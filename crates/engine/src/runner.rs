//! The domain-decomposed MD engine: multi-PE time stepping over a halo
//! exchange backend.
//!
//! One PE (thread) per DD rank executes the GPU-resident step skeleton of
//! the paper's Algorithm 2, functionally:
//!
//! 1. coordinate halo exchange (fused NVSHMEM-style or serialized MPI-style)
//! 2. bonded + non-bonded forces on home+halo copies (zone-pair rule)
//! 3. force halo exchange (+ accumulation)
//! 4. leapfrog integration of home atoms
//!
//! Every `nstlist` steps the decomposition is rebuilt centrally (the role of
//! GROMACS' neighbour-search / DD repartition step), coordinates are gathered
//! and re-scattered, and PEs get fresh index maps.

use crate::checkpoint::{Checkpoint, CheckpointError, ConfigFingerprint, StatsSnapshot};
use crate::config::{DlbMode, EngineConfig, ExchangeBackend, RunMode};
use crate::devtimer::PhaseTimer;
use crate::dlb::DlbController;
use crate::health::HealthBoard;
use crate::nb::NbEvaluator;
use halox_core::{build_contexts, exec, CommContext, FusedBuffers};
use halox_core::{ExchangeError, StallReport, Watchdog};
use halox_dd::{
    reference_coordinate_exchange, reference_force_exchange, try_build_partition_with,
    try_choose_grid, DdGrid, DdPartition, GridError, GridOptions, PlanError,
};
use halox_md::forces::{angle_virial, bond_virial, compute_angles, compute_bonds, NonbondedParams};
use halox_md::pairlist::eighth_shell_rule;
use halox_md::{integrate, EnergyReport, Frame, System, Vec3};
use halox_shmem::{
    ChaosEngine, ProxyConfig, ShmemWorld, TwoSidedComm, Wire, WireError, WireReader, WorldKey,
    WorldLease,
};
use halox_trace::{record_opt, span_opt, Payload, Region};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated results of a run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-step global energies (summed over ranks).
    pub energies: Vec<EnergyReport>,
    pub steps: usize,
    pub wall_seconds: f64,
    /// ns/day achieved by the functional engine (wall-clock based — this is
    /// host performance of the reproduction, not the paper's GPU numbers;
    /// those come from the timing plane).
    pub ns_per_day: f64,
    /// Segment retries on the same transport after a diagnosed stall.
    pub retries: usize,
    /// Transport downgrades (fused → fallback), in run order.
    pub downgrades: Vec<Downgrade>,
    /// Every stall diagnosis collected across the run (retried segments
    /// included — a recovered run still documents what it survived).
    pub stall_reports: Vec<StallReport>,
    /// Steps executed on the fallback transport.
    pub degraded_steps: usize,
    /// Peers re-promoted to the primary transport after rehabilitation.
    pub repromotions: usize,
    /// Faults the chaos engine actually injected (0 for fault-free runs).
    pub faults_injected: u64,
    /// Rewind-and-replay recoveries: terminal segment failures survived by
    /// restoring the last checkpoint and replaying (DESIGN.md §3.6).
    /// Cumulative across resumes.
    pub recoveries: usize,
    /// Completed steps discarded by those rewinds (and re-executed).
    pub rewound_steps: usize,
    /// Checkpoints persisted during the trajectory (cumulative).
    pub checkpoints_written: usize,
    /// Corrupt checkpoint files skipped while resolving the resume point —
    /// the warning counter behind the fall-back-to-previous-checkpoint
    /// tolerance (0 unless this engine came from [`Engine::resume_latest`]).
    pub corrupt_checkpoints_skipped: usize,
    /// Orphaned pid-qualified `*.tmp` files (atomic-rename leftovers from
    /// crashed writers) swept from the checkpoint directory when this
    /// engine first opened it (0 with checkpointing off).
    pub orphan_tmp_swept: usize,
    /// Wall-clock step-phase breakdown, aggregated over ranks and segments
    /// (`nb_local`, `nb_halo`, `pack_overlap`, `pairlist`, ...). Sums of
    /// per-rank wall time, so with N threaded ranks a phase can total more
    /// than `wall_seconds`.
    pub phases: PhaseTimer,
    /// Per-rank DLB load totals summed over this call's segments (the
    /// counter metric, or wall-clock microseconds under
    /// `DlbMode::Wallclock`). Also populated with DLB off — it is how the
    /// static baseline's imbalance is measured. Fault-free accounting:
    /// segments replayed after a rewind are counted again.
    pub rank_loads: Vec<u64>,
    /// Σ over segments of the *maximum* per-rank load — the critical-path
    /// work a perfectly synchronized machine would execute serially.
    pub critical_load: u64,
    /// Boundary updates the DLB controller applied during this call.
    pub dlb_updates: usize,
}

impl RunStats {
    /// Energies of the last completed step — `None` for a zero-step run.
    /// Prefer this over indexing `energies`: `run(0)` is a legal request
    /// (e.g. a partition-only warm-up) and must not panic downstream.
    pub fn final_energy(&self) -> Option<&EnergyReport> {
        self.energies.last()
    }

    /// Max/mean ratio of the per-rank load totals — 1.0 is perfect
    /// balance; `None` for a zero-step (or zero-load) run.
    pub fn load_ratio(&self) -> Option<f64> {
        let n = self.rank_loads.len();
        let total: u64 = self.rank_loads.iter().sum();
        if n == 0 || total == 0 {
            return None;
        }
        let max = *self.rank_loads.iter().max().expect("n > 0") as f64;
        Some(max / (total as f64 / n as f64))
    }
}

/// One transport downgrade event: at which step the run flipped from the
/// primary exchange path to the fallback, and which peers were implicated.
#[derive(Debug, Clone)]
pub struct Downgrade {
    /// Global step count completed when the downgrade happened.
    pub at_step: usize,
    pub from: ExchangeBackend,
    pub to: ExchangeBackend,
    /// Suspect peers named by the stall reports that triggered it.
    pub suspects: Vec<usize>,
}

/// A run that could not be completed even on the fallback transport, or a
/// configuration the decomposition machinery rejects outright.
#[derive(Debug)]
pub enum EngineError {
    /// A segment failed on `backend` after exhausting retries and (when
    /// available) the downgrade ladder.
    SegmentFailed {
        /// Global step count completed when the segment gave up.
        at_step: usize,
        backend: ExchangeBackend,
        /// Per-rank exchange errors from the final attempt.
        errors: Vec<ExchangeError>,
    },
    /// Configuration time: no feasible DD grid for the requested rank count
    /// on this box (the inner error carries both).
    InfeasibleGrid(GridError),
    /// Configuration time: the decomposition plan could not be built (a
    /// bonded term spans more than two domains; the inner error names the
    /// offending atoms).
    PlanFailed(PlanError),
    /// Checkpoint subsystem failure: an unwritable checkpoint directory, no
    /// valid file to resume from, or a fingerprint mismatch between the
    /// checkpoint and the resuming configuration.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::SegmentFailed {
                at_step,
                backend,
                errors,
            } => {
                write!(
                    f,
                    "segment at step {} failed on {} with {} rank error(s)",
                    at_step,
                    backend.label(),
                    errors.len()
                )?;
                for e in errors {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            EngineError::InfeasibleGrid(e) => write!(f, "{e}"),
            EngineError::PlanFailed(e) => write!(f, "{e}"),
            EngineError::Checkpoint(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Why one segment attempt failed (internal to the recovery ladder).
enum SegmentFailure {
    /// Plan construction failed before any world existed: a configuration
    /// error no retry or transport downgrade can fix.
    Plan(PlanError),
    /// Per-rank exchange errors from this attempt (stalls, dead PEs).
    Ranks(Vec<ExchangeError>),
}

/// Degradation-ladder counters accumulated while segments run.
#[derive(Default)]
struct RecoveryLog {
    retries: usize,
    downgrades: Vec<Downgrade>,
    stall_reports: Vec<StallReport>,
    degraded_steps: usize,
    repromotions: usize,
    recoveries: usize,
    rewound_steps: usize,
    checkpoints_written: usize,
}

impl RecoveryLog {
    /// Seed the durable counters from a checkpoint's snapshot; the
    /// diagnostic vectors restart per process (see [`StatsSnapshot`]).
    fn seeded(s: StatsSnapshot) -> Self {
        RecoveryLog {
            retries: s.retries,
            degraded_steps: s.degraded_steps,
            repromotions: s.repromotions,
            recoveries: s.recoveries,
            rewound_steps: s.rewound_steps,
            checkpoints_written: s.checkpoints_written,
            ..RecoveryLog::default()
        }
    }

    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            retries: self.retries,
            degraded_steps: self.degraded_steps,
            repromotions: self.repromotions,
            recoveries: self.recoveries,
            rewound_steps: self.rewound_steps,
            checkpoints_written: self.checkpoints_written,
        }
    }
}

/// Mid-trajectory state a resumed engine starts from.
struct ResumeSeed {
    /// Steps already completed when the checkpoint was taken.
    step: u64,
    /// Per-step energy history `[0, step)`.
    energies: Vec<EnergyReport>,
    /// Durable counters at `step`.
    stats: StatsSnapshot,
    /// Corrupt files skipped while resolving the resume point.
    corrupt_skipped: usize,
}

/// Per-rank state carried across a segment and returned to the gatherer.
struct RankResult {
    home_ids: Vec<u32>,
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    energies: Vec<EnergyReport>,
    phases: PhaseTimer,
    /// Deterministic work units this rank executed over the segment: pair
    /// interactions in its list plus owned atoms, per force round.
    work: u64,
    /// Wall-clock microseconds this rank's segment loop took (the
    /// `DlbMode::Wallclock` load metric; nondeterministic by nature).
    wall_us: u64,
}

/// Wire encoding so rank results can cross the process boundary of the
/// `procs` world backend (fields in declaration order).
impl Wire for RankResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.home_ids.encode(out);
        self.positions.encode(out);
        self.velocities.encode(out);
        self.energies.encode(out);
        self.phases.encode(out);
        self.work.encode(out);
        self.wall_us.encode(out);
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(RankResult {
            home_ids: Wire::decode(r)?,
            positions: Wire::decode(r)?,
            velocities: Wire::decode(r)?,
            energies: Wire::decode(r)?,
            phases: Wire::decode(r)?,
            work: u64::decode(r)?,
            wall_us: u64::decode(r)?,
        })
    }
}

/// The engine owns the global system and runs it decomposed over `grid`.
pub struct Engine {
    pub system: System,
    pub grid: DdGrid,
    pub config: EngineConfig,
    /// Symmetric buffers kept across segments (GROMACS-style
    /// over-allocation, paper §5.3: "thanks to the over-allocation strategy,
    /// resizing is rarely required").
    cached_buffers: Option<(FusedBuffers, usize, usize)>,
    /// How many times a segment had to reallocate the symmetric buffers.
    pub realloc_count: usize,
    /// Chaos engine shared by every segment's world, built lazily at the
    /// first segment (when the PE count is known). One engine for the whole
    /// run keeps operation counters — and thus fault schedules —
    /// deterministic across segment boundaries.
    chaos: Option<Arc<ChaosEngine>>,
    /// Per-peer degradation ladder, built lazily with the chaos engine.
    health: Option<HealthBoard>,
    /// Set by [`Engine::resume_from`]/[`Engine::resume_latest`]: the next
    /// `try_run*` continues the trajectory from this state instead of
    /// step 0, and is refreshed at run end so repeated runs keep extending
    /// the same trajectory.
    resume: Option<ResumeSeed>,
    /// Newest persisted (or resumed-from) checkpoint — the rewind target of
    /// the supervised recovery ladder.
    last_ckpt: Option<Checkpoint>,
    /// Step-phase wall-clock accumulator for the current run (reset at the
    /// start of every `try_run*`, merged from each segment's ranks).
    phases: PhaseTimer,
    /// Attached world lease ([`Engine::attach_world`]): segments run on the
    /// leased (pool-recycled) world instead of constructing one per
    /// segment. Poisoned on any failed attempt so retries and replays get a
    /// fresh world, preserving the unleased path's semantics.
    leased: Option<WorldLease>,
    /// `Some(n)` once the checkpoint directory has been opened and swept of
    /// orphaned writer tmp files; the sweep runs once per engine.
    orphans_swept: Option<usize>,
    /// Movable DD cell boundaries + the balancing policy (DESIGN.md §3.8).
    /// Always present; with `config.dlb == Off` the bounds simply stay
    /// uniform and `update` is never called. Bounds are trajectory state:
    /// checkpointed, restored on resume, rewound on replay.
    dlb: DlbController,
    /// Per-rank load totals of the current run (reset per `try_run*`).
    run_loads: Vec<u64>,
    /// Σ of per-segment maximum loads of the current run.
    run_critical: u64,
    /// DLB updates applied during the current run.
    run_dlb_updates: usize,
}

/// A summary, not a dump: `system` alone is tens of thousands of floats.
impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n_atoms", &self.system.n_atoms())
            .field("grid", &self.grid.dims)
            .field("backend", &self.config.backend)
            .field("run_mode", &self.config.run_mode)
            .field("world_backend", &self.config.world_backend)
            .field("frontier_step", &self.resume.as_ref().map(|r| r.step))
            .field("leased_world", &self.leased.is_some())
            .finish_non_exhaustive()
    }
}

impl Engine {
    pub fn new(system: System, grid: DdGrid, config: EngineConfig) -> Self {
        let dlb = DlbController::new(&grid, system.pbc.lengths(), config.r_comm());
        Engine {
            system,
            grid,
            config,
            cached_buffers: None,
            realloc_count: 0,
            chaos: None,
            health: None,
            resume: None,
            last_ckpt: None,
            phases: PhaseTimer::new(),
            leased: None,
            orphans_swept: None,
            dlb,
            run_loads: Vec::new(),
            run_critical: 0,
            run_dlb_updates: 0,
        }
    }

    /// The movable cell boundaries the next segment will partition under
    /// (uniform until a DLB update shifts them or a resume restores
    /// shifted ones).
    pub fn bounds(&self) -> &halox_dd::DdBounds {
        &self.dlb.bounds
    }

    /// `min_pulses` for partition builds: pinned when DLB is active so the
    /// slot layout survives boundary drift, `None` (pure geometry) when
    /// off — which keeps DLB-off runs byte-identical to the pre-DLB
    /// engine.
    fn min_pulses(&self) -> Option<[usize; 3]> {
        self.dlb.min_pulses(self.config.dlb)
    }

    /// Fold one successful segment's per-rank loads into the run
    /// accounting and, when DLB is on, shift the boundaries for the next
    /// segment. Called exactly once per *successful* segment (failed
    /// attempts never reach the gather), identically on both executors.
    fn note_segment_loads(&mut self, loads: &[u64]) {
        if self.run_loads.len() != loads.len() {
            self.run_loads = vec![0; loads.len()];
        }
        for (acc, &w) in self.run_loads.iter_mut().zip(loads) {
            *acc += w;
        }
        self.run_critical += loads.iter().copied().max().unwrap_or(0);
        if self.config.dlb != DlbMode::Off {
            self.dlb.update(loads);
            self.run_dlb_updates += 1;
        }
    }

    /// Build an engine with an automatically chosen DD grid for `n_ranks`,
    /// surfacing an infeasible decomposition as a typed configuration-time
    /// error — the message carries the rank count and box — instead of a
    /// panic from deep inside grid selection.
    pub fn try_new_auto(
        system: System,
        n_ranks: usize,
        opts: &GridOptions,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let grid = try_choose_grid(n_ranks, system.pbc.lengths(), opts)
            .map_err(EngineError::InfeasibleGrid)?;
        Ok(Engine::new(system, grid, config))
    }

    /// Reconstruct a run mid-trajectory from one checkpoint file: the next
    /// `run(n)` advances `n` *further* steps and its `RunStats` — steps,
    /// energies, recovery counters — reads as if the trajectory had never
    /// been interrupted (bitwise, per the conformance suite). The
    /// checkpoint's fingerprint must match `config`; a resume under a
    /// different transport/kernel/timestep/grid is refused with
    /// [`EngineError::Checkpoint`] carrying the offending field.
    pub fn resume_from(path: &Path, config: EngineConfig) -> Result<Self, EngineError> {
        let ck = Checkpoint::read(path).map_err(EngineError::Checkpoint)?;
        Self::from_checkpoint(ck, 0, config)
    }

    /// [`Engine::resume_from`] the newest *readable* checkpoint in `dir`:
    /// corrupt files (torn writes, bit flips) are skipped with a warning
    /// counter — surfaced as `RunStats::corrupt_checkpoints_skipped` —
    /// falling back to the previous checkpoint rather than failing.
    pub fn resume_latest(dir: &Path, config: EngineConfig) -> Result<Self, EngineError> {
        let (ck, skipped) = Checkpoint::latest_valid(dir).map_err(EngineError::Checkpoint)?;
        Self::from_checkpoint(ck, skipped, config)
    }

    fn from_checkpoint(
        ck: Checkpoint,
        corrupt_skipped: usize,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        let (gx, gy, gz) = ck.fingerprint.grid;
        // Validate before DdGrid::new, which asserts — corrupt-but-CRC-valid
        // input must surface as a typed error, never a panic.
        if gx == 0 || gy == 0 || gz == 0 || ck.energies.len() != ck.step as usize {
            return Err(EngineError::Checkpoint(CheckpointError::Decode(
                WireError::malformed(format!(
                    "inconsistent checkpoint: grid {:?}, {} energies for step {}",
                    ck.fingerprint.grid,
                    ck.energies.len(),
                    ck.step
                )),
            )));
        }
        let grid = DdGrid::new([gx, gy, gz]);
        // Same discipline as the grid/energies check above: CRC-valid but
        // inconsistent boundary vectors must be a typed error, not a panic
        // (or worse, a silent mis-partition) downstream.
        if let Err(e) = ck.bounds.validate(&grid) {
            return Err(EngineError::Checkpoint(CheckpointError::Decode(
                WireError::malformed(format!("inconsistent checkpoint bounds: {e}")),
            )));
        }
        let expected = ConfigFingerprint::of(&config, grid.dims, ck.system.n_atoms());
        ck.fingerprint
            .check(&expected)
            .map_err(EngineError::Checkpoint)?;
        let mut engine = Engine::new(ck.system.clone(), grid, config);
        engine.dlb.bounds = ck.bounds.clone();
        engine.resume = Some(ResumeSeed {
            step: ck.step,
            energies: ck.energies.clone(),
            stats: ck.stats,
            corrupt_skipped,
        });
        engine.last_ckpt = Some(ck);
        Ok(engine)
    }

    /// [`Engine::resume_from`] without the filesystem: resume directly from
    /// an in-memory checkpoint. This is the suspend/resume path of the job
    /// service, where trajectory state travels between workers as a value
    /// rather than a file. Same fingerprint discipline as the file path: a
    /// resume under a different transport/kernel/timestep/grid is refused.
    pub fn resume_from_checkpoint(
        ck: Checkpoint,
        config: EngineConfig,
    ) -> Result<Self, EngineError> {
        Self::from_checkpoint(ck, 0, config)
    }

    /// Snapshot the trajectory frontier as an in-memory checkpoint — the
    /// counterpart of [`Engine::resume_from_checkpoint`]. `None` before the
    /// engine has resumed or completed a run (no frontier exists yet).
    /// Suspending at a run boundary and resuming on another engine — or
    /// another worker — is bitwise-equivalent to running straight through.
    pub fn suspend(&self) -> Option<Checkpoint> {
        self.resume.as_ref().map(|seed| Checkpoint {
            fingerprint: self.fingerprint(),
            step: seed.step,
            system: self.system.clone(),
            energies: seed.energies.clone(),
            stats: seed.stats,
            bounds: self.dlb.bounds.clone(),
        })
    }

    /// Attach a world lease: segments run on the leased world (reset
    /// between uses, rebuilt when poisoned) instead of constructing a fresh
    /// world per segment. [`Engine::take_world`] returns the lease — e.g.
    /// to give it back to a [`halox_shmem::WorldPool`] when the job
    /// suspends.
    pub fn attach_world(&mut self, lease: WorldLease) {
        self.leased = Some(lease);
    }

    /// Detach and return the attached world lease, if any. After a failed
    /// run the returned lease is poisoned — dropping it frees the pool slot
    /// without recycling the world.
    pub fn take_world(&mut self) -> Option<WorldLease> {
        self.leased.take()
    }

    /// The pool key segments of this engine run under: world backend,
    /// topology for the DD rank count, and the signal-slot budget of the
    /// pulse schedule. Fails when the system cannot be decomposed on this
    /// grid (same typed error a run would hit).
    pub fn world_key(&self) -> Result<WorldKey, EngineError> {
        let part = try_build_partition_with(
            &self.system,
            &self.grid,
            &self.dlb.bounds,
            self.config.r_comm(),
            self.min_pulses(),
        )
        .map_err(EngineError::PlanFailed)?;
        Ok(WorldKey {
            backend: self.config.world_backend,
            topology: self.config.topology(part.n_ranks()),
            n_signal_slots: CommContext::slots_needed(part.total_pulses()),
        })
    }

    /// Install a pre-built chaos engine ahead of the lazy construction in
    /// `ensure_run_state`. A service job that is rescheduled across engines
    /// must carry ONE chaos engine for its whole lifetime: operation
    /// counters live in the engine, so a one-shot fault trigger consumed
    /// before a reschedule stays consumed instead of re-firing in every
    /// fresh [`Engine`].
    pub fn preset_chaos(&mut self, chaos: Arc<ChaosEngine>) {
        self.chaos = Some(chaos);
    }

    /// `(step, corrupt files skipped)` of the resume point, when this engine
    /// was built by [`Engine::resume_from`]/[`Engine::resume_latest`] (or
    /// has completed a resumed run — then it reflects the current frontier).
    pub fn resumed(&self) -> Option<(u64, usize)> {
        self.resume.as_ref().map(|r| (r.step, r.corrupt_skipped))
    }

    /// The configuration identity a checkpoint of this engine would carry.
    pub fn fingerprint(&self) -> ConfigFingerprint {
        ConfigFingerprint::of(&self.config, self.grid.dims, self.system.n_atoms())
    }

    fn make_checkpoint(
        &self,
        step: u64,
        energies: &[EnergyReport],
        recovery: &RecoveryLog,
    ) -> Checkpoint {
        Checkpoint {
            fingerprint: self.fingerprint(),
            step,
            system: self.system.clone(),
            energies: energies.to_vec(),
            stats: recovery.snapshot(),
            bounds: self.dlb.bounds.clone(),
        }
    }

    /// Peer health after a run (None before the first segment).
    pub fn health(&self) -> Option<&HealthBoard> {
        self.health.as_ref()
    }

    /// Step-phase timings of the most recent run (also in
    /// [`RunStats::phases`]).
    pub fn phases(&self) -> &PhaseTimer {
        &self.phases
    }

    /// Advance `n_steps`; returns per-step energies and throughput.
    /// Panics if the run fails even on the fallback transport — use
    /// [`Engine::try_run`] to handle that as a value.
    pub fn run(&mut self, n_steps: usize) -> RunStats {
        self.try_run(n_steps).expect("engine run failed")
    }

    /// Like [`Engine::run`], calling `observer(steps_done, &system)` after
    /// every neighbour-search segment, when the gathered global system is
    /// coherent — the hook for trajectory writing and on-the-fly analysis.
    pub fn run_with_observer(
        &mut self,
        n_steps: usize,
        observer: impl FnMut(usize, &System),
    ) -> RunStats {
        self.try_run_with_observer(n_steps, observer)
            .expect("engine run failed")
    }

    /// Fallible run: a segment that stalls past the watchdog deadline is
    /// retried, then downgraded to the fallback transport; only when even
    /// the fallback fails does the run abort with [`EngineError`].
    pub fn try_run(&mut self, n_steps: usize) -> Result<RunStats, EngineError> {
        self.try_run_with_observer(n_steps, |_, _| {})
    }

    /// Fallible [`Engine::run_with_observer`].
    ///
    /// On a resumed engine, `n_steps` means *additional* steps and the
    /// returned stats describe the whole trajectory (`steps` = resume
    /// point + `n_steps`, `energies` = full per-step history) so an
    /// interrupted run reads bitwise-identically to one that never
    /// crashed.
    ///
    /// With [`EngineConfig::checkpoint`] set, a snapshot is persisted every
    /// `every_segments` neighbour-search segments, and a segment that fails
    /// *terminally* (retries and fallback exhausted, or a dead PE with no
    /// fallback headroom) is survived by rewinding to the last checkpoint
    /// and replaying — at most `max_recoveries` times per call. Observers
    /// may therefore see the same segment boundary more than once after a
    /// rewind; completed-then-rewound work is counted in
    /// [`RunStats::rewound_steps`].
    pub fn try_run_with_observer(
        &mut self,
        n_steps: usize,
        mut observer: impl FnMut(usize, &System),
    ) -> Result<RunStats, EngineError> {
        let t0 = Instant::now();
        self.phases = PhaseTimer::new();
        self.run_loads.clear();
        self.run_critical = 0;
        self.run_dlb_updates = 0;
        let had_seed = self.resume.is_some();
        let (base, mut energies, corrupt_skipped, mut recovery) = match self.resume.take() {
            Some(seed) => (
                seed.step as usize,
                seed.energies,
                seed.corrupt_skipped,
                RecoveryLog::seeded(seed.stats),
            ),
            None => (0, Vec::new(), 0, RecoveryLog::default()),
        };
        let target = base + n_steps;
        let ckpt_cfg = self.config.checkpoint.clone();
        let max_recoveries = ckpt_cfg.as_ref().map_or(0, |c| c.max_recoveries);
        // First touch of the checkpoint directory: sweep orphaned
        // `.ckpt-*.hxck.tmp.<pid>` files another writer left behind when it
        // crashed between create and rename (once per engine; surfaced as
        // `RunStats::orphan_tmp_swept`).
        if let Some(cfg) = &ckpt_cfg {
            if self.orphans_swept.is_none() {
                self.orphans_swept = Some(Checkpoint::sweep_orphan_tmp(&cfg.dir));
            }
        }
        // Baseline snapshot: before any steps run there must already be a
        // rewind target, so even a first-segment terminal failure recovers.
        if let Some(cfg) = &ckpt_cfg {
            if self.last_ckpt.is_none() {
                // Counter first: a snapshot counts itself, so the tally
                // stays exact across resumes.
                recovery.checkpoints_written += 1;
                let ck = self.make_checkpoint(base as u64, &energies, &recovery);
                ck.write_atomic(&cfg.dir).map_err(EngineError::Checkpoint)?;
                self.last_ckpt = Some(ck);
            }
        }
        let mut done = base;
        let mut seg_index = 0usize;
        let mut recoveries_left = max_recoveries;
        while done < target {
            let segment = self.config.nstlist.min(target - done);
            match self.run_segment_with_recovery(segment, done, &mut recovery) {
                Ok(seg_energies) => {
                    energies.extend(seg_energies);
                    done += segment;
                    seg_index += 1;
                    observer(done, &self.system);
                    if let Some(cfg) = &ckpt_cfg {
                        if seg_index.is_multiple_of(cfg.every_segments.max(1)) {
                            recovery.checkpoints_written += 1;
                            let ck = self.make_checkpoint(done as u64, &energies, &recovery);
                            ck.write_atomic(&cfg.dir).map_err(EngineError::Checkpoint)?;
                            Checkpoint::prune(&cfg.dir, cfg.keep.max(1));
                            self.last_ckpt = Some(ck);
                        }
                    }
                }
                Err(e @ EngineError::SegmentFailed { .. })
                    if recoveries_left > 0 && self.last_ckpt.is_some() =>
                {
                    // Supervised rewind-and-replay: the last rung of the
                    // failure ladder (DESIGN.md §3.6). The failed segment
                    // never gathered into `self.system`, so restoring the
                    // checkpointed system + energy history rewinds the
                    // trajectory to a coherent boundary; a fresh world
                    // (fresh forks under the procs backend) replays from
                    // there. Failed peers get a probation trial, and chaos
                    // op counters are NOT reset — one-shot fault triggers
                    // stay consumed, so kill schedules advance rather than
                    // re-killing every replay.
                    let _ = e;
                    let ck = self.last_ckpt.clone().expect("guarded by is_some");
                    recoveries_left -= 1;
                    recovery.recoveries += 1;
                    recovery.rewound_steps += done - ck.step as usize;
                    done = ck.step as usize;
                    seg_index = 0;
                    self.system = ck.system.clone();
                    energies.clone_from(&ck.energies);
                    // Boundaries are trajectory state like the system: the
                    // replay must repartition exactly as the first pass did.
                    self.dlb.bounds = ck.bounds.clone();
                    self.cached_buffers = None;
                    if let Some(h) = self.health.as_mut() {
                        h.recover_failed();
                    }
                    if let Some(c) = &self.chaos {
                        c.revive_all();
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let wall = t0.elapsed().as_secs_f64();
        // A resumed (or checkpointing) engine stays trajectory-continuous:
        // another `run(n)` on it extends from the frontier just reached,
        // with durable step numbering. `had_seed` (not `base > 0`) keeps an
        // engine resumed at step 0 — a service job's baseline checkpoint —
        // refreshing its seed, so `suspend` works after the first slice.
        if had_seed || ckpt_cfg.is_some() {
            self.resume = Some(ResumeSeed {
                step: done as u64,
                energies: energies.clone(),
                stats: recovery.snapshot(),
                corrupt_skipped,
            });
        }
        Ok(RunStats {
            steps: target,
            wall_seconds: wall,
            ns_per_day: if wall > 0.0 {
                (n_steps as f64 * self.config.dt_ps as f64 * 1e-3) / (wall / 86_400.0)
            } else {
                0.0
            },
            energies,
            retries: recovery.retries,
            downgrades: recovery.downgrades,
            stall_reports: recovery.stall_reports,
            degraded_steps: recovery.degraded_steps,
            repromotions: recovery.repromotions,
            faults_injected: self.chaos.as_ref().map_or(0, |c| c.report().total()),
            recoveries: recovery.recoveries,
            rewound_steps: recovery.rewound_steps,
            checkpoints_written: recovery.checkpoints_written,
            corrupt_checkpoints_skipped: corrupt_skipped,
            orphan_tmp_swept: self.orphans_swept.unwrap_or(0),
            phases: self.phases.clone(),
            rank_loads: self.run_loads.clone(),
            critical_load: self.run_critical,
            dlb_updates: self.run_dlb_updates,
        })
    }

    /// Make sure the lazily-built chaos engine and health board exist.
    fn ensure_run_state(&mut self, n_ranks: usize) {
        if self.health.is_none() {
            self.health = Some(HealthBoard::new(n_ranks));
        }
        if self.chaos.is_none() {
            if let Some(plan) = &self.config.chaos {
                self.chaos = Some(Arc::new(ChaosEngine::new(plan.clone(), n_ranks)));
            }
        }
    }

    /// One segment through the degradation ladder: attempt on the
    /// health-selected transport, retry with backoff on diagnosed stalls,
    /// downgrade to the fallback, and only then give up.
    fn run_segment_with_recovery(
        &mut self,
        steps: usize,
        at_step: usize,
        recovery: &mut RecoveryLog,
    ) -> Result<Vec<EnergyReport>, EngineError> {
        if self.config.run_mode == RunMode::Serial {
            // The reference driver performs no deliveries, so nothing can
            // stall or be faulted: the recovery ladder is vacuous.
            return self.run_segment_serial(steps);
        }
        let n_ranks = self.grid.dims.iter().product::<usize>();
        self.ensure_run_state(n_ranks);
        let primary = self.config.backend;
        let wd_cfg = self.config.watchdog;
        let fallback = wd_cfg.fallback;

        let mut backend =
            if primary != fallback && self.health.as_ref().is_some_and(|h| h.needs_fallback()) {
                fallback
            } else {
                primary
            };
        let mut attempt = 0;
        loop {
            match self.run_segment(steps, backend) {
                Ok(seg_energies) => {
                    let health = self.health.as_mut().expect("health board initialized");
                    if backend == primary {
                        recovery.repromotions += health.record_primary_success();
                    } else {
                        recovery.degraded_steps += steps;
                        health.record_fallback_success(wd_cfg.repromote_after);
                    }
                    return Ok(seg_energies);
                }
                Err(SegmentFailure::Plan(e)) => {
                    // A mis-decomposed system: no retry or transport change
                    // can fix it, so surface it as a configuration error.
                    return Err(EngineError::PlanFailed(e));
                }
                Err(SegmentFailure::Ranks(errors)) => {
                    // A failed attempt can abandon the leased world
                    // mid-protocol (barrier sense, collective slots):
                    // poison it so this retry/downgrade — and any
                    // checkpoint replay above — runs on a fresh world,
                    // matching the unleased path's world-per-attempt
                    // semantics.
                    if let Some(lease) = self.leased.as_mut() {
                        lease.poison();
                    }
                    let mut suspects: Vec<usize> = Vec::new();
                    let mut died: Vec<usize> = Vec::new();
                    for e in &errors {
                        if let Some(p) = e.suspect_peer() {
                            suspects.push(p);
                        }
                        if let ExchangeError::PeDied { peer, .. } = e {
                            died.push(*peer);
                        }
                        if let Some(r) = e.stall() {
                            recovery.stall_reports.push(r.clone());
                        }
                    }
                    suspects.sort_unstable();
                    suspects.dedup();
                    died.sort_unstable();
                    died.dedup();
                    let health = self.health.as_mut().expect("health board initialized");
                    for &p in &suspects {
                        health.record_stall(p);
                    }
                    // A dead PE process is terminal for this run: mark it
                    // Failed outright (no strike ladder) and skip retries —
                    // only the fallback transport on a fresh world (fresh
                    // forks under the procs backend) can make progress.
                    for &p in &died {
                        health.fail(p);
                    }
                    if died.is_empty() && attempt < wd_cfg.max_retries {
                        attempt += 1;
                        recovery.retries += 1;
                        std::thread::sleep(wd_cfg.backoff);
                        continue;
                    }
                    if backend != fallback {
                        // Out of retries on the primary: quarantine the
                        // suspects and flip the run to the fallback.
                        for &p in &suspects {
                            health.quarantine(p);
                        }
                        recovery.downgrades.push(Downgrade {
                            at_step,
                            from: backend,
                            to: fallback,
                            suspects,
                        });
                        backend = fallback;
                        attempt = 0;
                        continue;
                    }
                    return Err(EngineError::SegmentFailed {
                        at_step,
                        backend,
                        errors,
                    });
                }
            }
        }
    }

    /// One neighbour-search segment on one transport: partition,
    /// exchange/step loop, gather. A failed attempt leaves `self.system`
    /// untouched (home atoms are gathered only when every rank succeeds),
    /// so the caller can retry on a fresh world.
    fn run_segment(
        &mut self,
        steps: usize,
        backend: ExchangeBackend,
    ) -> Result<Vec<EnergyReport>, SegmentFailure> {
        let mut cfg = self.config.clone();
        cfg.backend = backend;
        let part = try_build_partition_with(
            &self.system,
            &self.grid,
            &self.dlb.bounds,
            cfg.r_comm(),
            self.min_pulses(),
        )
        .map_err(SegmentFailure::Plan)?;
        let ctxs = build_contexts(&part);
        let n_ranks = part.n_ranks();
        let system = Arc::new(self.system.clone());
        let total_pulses = part.total_pulses();

        // Backend first: for `Procs` building the world flips symmetric
        // allocation to the shared heap, which must happen before
        // FusedBuffers / TwoSidedComm below allocate anything the forked
        // PEs will touch. (Reusing a leased procs world means the heap flip
        // already happened at its construction — the flip is sticky.)
        let key = WorldKey {
            backend: cfg.world_backend,
            topology: cfg.topology(n_ranks),
            n_signal_slots: CommContext::slots_needed(total_pulses),
        };
        // Modeled interconnect latency: the proxy thread pays it per
        // inter-node message, asynchronously to PE compute (the serial
        // driver pays the same per-message delay inline — see
        // `EngineConfig::link_delay_us`).
        let proxy_cfg = if cfg.link_delay_us > 0 {
            ProxyConfig {
                injected_delay: Some(Duration::from_micros(cfg.link_delay_us)),
                random_delay: None,
            }
        } else {
            ProxyConfig::default()
        };
        // The chaos engine targets signal/put deliveries, so it only bites
        // on the signal-driven transports — attaching it under the MPI
        // fallback is harmless (two-sided rendezvous performs no symmetric
        // deliveries), and keeps one engine for the whole run.
        let owned_world;
        let world: &ShmemWorld = match self.leased.as_mut() {
            // Leased path: reuse the held world when clean and the key
            // matches, rebuild in place otherwise. Attachments are
            // per-tenant state, so they are (re)applied every segment.
            Some(lease) => {
                let w = lease.world_for(key);
                w.set_trace(cfg.trace.clone());
                w.set_proxy_config(proxy_cfg);
                w.set_chaos(self.chaos.clone());
                w
            }
            // Unleased path: one fresh world per segment attempt, as ever.
            None => {
                let mut world = key.build();
                if let Some(rec) = &cfg.trace {
                    world = world.with_trace(Arc::clone(rec));
                }
                world = world.with_proxy_config(proxy_cfg);
                if let Some(chaos) = &self.chaos {
                    world = world.with_chaos(Arc::clone(chaos));
                }
                owned_world = world;
                &owned_world
            }
        };
        // Symmetric allocation with over-allocation: reuse the buffers from
        // the previous segment when capacities still fit, else grow by 10%.
        let need_buf = ctxs[0].buf_capacity;
        let need_stage = ctxs[0].stage_capacity.max(1);
        let bufs = match self.cached_buffers.take() {
            Some((b, cap_buf, cap_stage)) if cap_buf >= need_buf && cap_stage >= need_stage => b,
            _ => {
                self.realloc_count += 1;
                let mut padded = ctxs[0].clone();
                padded.buf_capacity = need_buf + need_buf / 10;
                padded.stage_capacity = need_stage + need_stage / 10;
                FusedBuffers::alloc(n_ranks, &padded)
            }
        };
        let comm = TwoSidedComm::new(n_ranks);

        let part_ref = &part;
        let ctxs_ref = &ctxs;
        let bufs_ref = &bufs;
        let comm_ref = &comm;
        let sys_ref = &system;

        let run = world.try_run(|pe| {
            rank_segment(
                pe,
                &part_ref.ranks[pe.id],
                &ctxs_ref[pe.id],
                bufs_ref,
                comm_ref,
                sys_ref,
                &cfg,
                steps,
                part_ref,
            )
        });

        // Capacity survives a failed attempt, so cache either way.
        self.cached_buffers = Some((bufs.clone(), bufs.coords.len(), bufs.force_stage.len()));

        let results = match run {
            Ok(r) => r,
            Err(world_err) => {
                // A PE died (process exit, or an uncaught panic): report one
                // PeDied per failure so the recovery ladder can mark the
                // peer Failed and flip to the fallback — never a hang, never
                // an engine panic.
                return Err(SegmentFailure::Ranks(
                    world_err
                        .failures
                        .into_iter()
                        .map(|(pe, cause)| ExchangeError::PeDied {
                            rank: pe,
                            peer: pe,
                            detail: cause.to_string(),
                        })
                        .collect(),
                ));
            }
        };

        let errors: Vec<ExchangeError> = results
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect();
        if !errors.is_empty() {
            return Err(SegmentFailure::Ranks(errors));
        }

        // Gather home atoms back into the global system.
        let mut energies = vec![EnergyReport::default(); steps];
        let mut loads = vec![0u64; n_ranks];
        for (idx, r) in results
            .into_iter()
            .map(|r| r.expect("errors handled above"))
            .enumerate()
        {
            self.phases.merge(&r.phases);
            loads[idx] = match cfg.dlb {
                DlbMode::Wallclock => r.wall_us,
                _ => r.work,
            };
            for (k, &g) in r.home_ids.iter().enumerate() {
                self.system.positions[g as usize] = self.system.pbc.wrap(r.positions[k]);
                self.system.velocities[g as usize] = r.velocities[k];
            }
            for (s, e) in r.energies.iter().enumerate() {
                energies[s].nonbonded += e.nonbonded;
                energies[s].bonds += e.bonds;
                energies[s].angles += e.angles;
                energies[s].kinetic += e.kinetic;
                energies[s].virial += e.virial;
            }
        }
        self.note_segment_loads(&loads);
        Ok(energies)
    }

    /// One neighbour-search segment under [`RunMode::Serial`]: a single
    /// host thread advances every rank phase-by-phase — exchange all
    /// coordinates, compute all forces, exchange all forces, integrate —
    /// using the serial reference exchanges from `halox_dd`. No world, no
    /// signal protocol, no chaos deliveries: deterministic by construction,
    /// and required to be bitwise-identical to what the threaded executor
    /// produces (DESIGN.md §3.3 spells out the ordering rules that make
    /// that hold).
    ///
    /// When `link_delay_us` is set the driver sleeps the delay inline once
    /// per inter-node message — the host-driven blocking baseline against
    /// which `halox-bench threads` measures latency overlap.
    fn run_segment_serial(&mut self, steps: usize) -> Result<Vec<EnergyReport>, EngineError> {
        let cfg = self.config.clone();
        let part = try_build_partition_with(
            &self.system,
            &self.grid,
            &self.dlb.bounds,
            cfg.r_comm(),
            self.min_pulses(),
        )
        .map_err(EngineError::PlanFailed)?;
        let n_ranks = part.n_ranks();
        let system = self.system.clone();
        let params = NonbondedParams::new(cfg.cutoff);
        let frame = Frame::for_decomposition(&system.pbc, part.grid.dims);
        let topology = cfg.topology(n_ranks);

        // Blocking-baseline latency model: one delay per message that
        // crosses a node boundary (the mirror-image force pulse sends the
        // same messages, so one count serves both exchanges).
        let inter_node_msgs = part
            .ranks
            .iter()
            .flat_map(|r| r.pulses.iter().map(move |pd| (r.rank, pd)))
            .filter(|(src, pd)| {
                pd.send_count() > 0 && !topology.nvlink_reachable(*src, pd.send_rank)
            })
            .count() as u32;
        let exchange_delay = (cfg.link_delay_us > 0 && inter_node_msgs > 0)
            .then(|| Duration::from_micros(cfg.link_delay_us) * inter_node_msgs);

        // Per-rank state, in rank order (the threaded executor's PE order).
        let mut positions: Vec<Vec<Vec3>> = part
            .ranks
            .iter()
            .map(|p| p.build_positions.clone())
            .collect();
        let mut velocities: Vec<Vec<Vec3>> = part
            .ranks
            .iter()
            .map(|p| {
                p.global_ids[..p.n_home]
                    .iter()
                    .map(|&g| system.velocities[g as usize])
                    .collect()
            })
            .collect();
        let mut forces: Vec<Vec<Vec3>> = part
            .ranks
            .iter()
            .map(|p| vec![Vec3::ZERO; p.n_local()])
            .collect();
        let mut nbs: Vec<NbEvaluator> = (0..n_ranks)
            .map(|_| NbEvaluator::new(cfg.nb_kernel))
            .collect();
        let mut timer = PhaseTimer::new();
        let mut per_rank_energies: Vec<Vec<EnergyReport>> =
            (0..n_ranks).map(|_| Vec::with_capacity(steps)).collect();
        let ndf = 3.0 * system.n_atoms() as f64 - 3.0;
        // DLB load accounting, mirroring `rank_segment`: deterministic work
        // units per rank, and per-rank wall time of the force computation
        // (the only per-rank-attributable phase a serialized driver has).
        let mut rank_work = vec![0u64; n_ranks];
        let mut rank_wall_us = vec![0u64; n_ranks];

        // Exchange + force round over all ranks; returns per-rank
        // (nonbonded, bonds, angles, virial) in rank order. Mirrors
        // `rank_segment`'s `force_round!` phase-for-phase.
        macro_rules! serial_force_round {
            () => {{
                reference_coordinate_exchange(&part, &mut positions);
                if let Some(d) = exchange_delay {
                    std::thread::sleep(d);
                }
                let mut terms = Vec::with_capacity(n_ranks);
                for (r, plan) in part.ranks.iter().enumerate() {
                    let round_t0 = Instant::now();
                    let n_local = plan.n_local();
                    let disp = &plan.displacement;
                    let ids = &plan.global_ids;
                    let sys = &system;
                    let rule = move |i: usize, j: usize| {
                        eighth_shell_rule(disp, i, j)
                            && !sys.is_excluded(ids[i] as usize, ids[j] as usize)
                    };
                    forces[r].clear();
                    forces[r].resize(n_local, Vec3::ZERO);
                    // Same evaluator, same single staleness decision per
                    // round as the threaded executor — local tiles, then
                    // halo tiles, folded in the same order (no overlap
                    // window here, but the arithmetic is identical).
                    let (nonbonded, w_nb) = nbs[r].compute(
                        &frame,
                        &positions[r],
                        &plan.kinds,
                        plan.n_home,
                        cfg.r_comm(),
                        cfg.buffer,
                        &rule,
                        &params,
                        &mut forces[r],
                        &mut timer,
                    );
                    let local_ident = |g: u32| Some(g);
                    let bonds = compute_bonds(
                        &system.pbc,
                        &positions[r],
                        &plan.bonds,
                        &local_ident,
                        &mut forces[r],
                    );
                    let angles = compute_angles(
                        &system.pbc,
                        &positions[r],
                        &plan.angles,
                        &local_ident,
                        &mut forces[r],
                    );
                    let virial = w_nb
                        + bond_virial(&system.pbc, &positions[r], &plan.bonds)
                        + angle_virial(&system.pbc, &positions[r], &plan.angles);
                    rank_work[r] += nbs[r].last_pair_count() + plan.n_home as u64;
                    rank_wall_us[r] += round_t0.elapsed().as_micros() as u64;
                    terms.push((nonbonded, bonds, angles, virial));
                }
                reference_force_exchange(&part, &mut forces);
                if let Some(d) = exchange_delay {
                    std::thread::sleep(d);
                }
                terms
            }};
        }

        // Global KE exactly as the threaded allreduce computes it: fold
        // from zero in PE index order.
        let global_ke = |ks: &[f64]| ks.iter().fold(0.0f64, |acc, &k| acc + k);

        match cfg.integrator {
            crate::config::Integrator::Leapfrog => {
                for _step in 0..steps {
                    let terms = serial_force_round!();
                    let kinetics: Vec<f64> = part
                        .ranks
                        .iter()
                        .enumerate()
                        .map(|(r, plan)| {
                            integrate::kinetic_energy(&velocities[r], &plan.inv_mass[..plan.n_home])
                        })
                        .collect();
                    let ke = global_ke(&kinetics);
                    for (r, plan) in part.ranks.iter().enumerate() {
                        let (nonbonded, bonds, angles, virial) = terms[r];
                        per_rank_energies[r].push(EnergyReport {
                            nonbonded,
                            bonds,
                            angles,
                            kinetic: kinetics[r],
                            virial,
                        });
                        if let Some(t) = cfg.thermostat {
                            integrate::berendsen_scale(
                                &mut velocities[r],
                                ke,
                                ndf,
                                t.t_ref,
                                t.tau_ps,
                                cfg.dt_ps as f64,
                            );
                        }
                        integrate::leapfrog_step(
                            &mut positions[r][..plan.n_home],
                            &mut velocities[r],
                            &forces[r][..plan.n_home],
                            &plan.inv_mass[..plan.n_home],
                            cfg.dt_ps,
                        );
                    }
                }
            }
            crate::config::Integrator::VelocityVerlet => {
                let _ = serial_force_round!();
                for _step in 0..steps {
                    for (r, plan) in part.ranks.iter().enumerate() {
                        integrate::velocity_verlet_start(
                            &mut positions[r][..plan.n_home],
                            &mut velocities[r],
                            &forces[r][..plan.n_home],
                            &plan.inv_mass[..plan.n_home],
                            cfg.dt_ps,
                        );
                    }
                    let terms = serial_force_round!();
                    let kinetics: Vec<f64> = part
                        .ranks
                        .iter()
                        .enumerate()
                        .map(|(r, plan)| {
                            integrate::velocity_verlet_finish(
                                &mut velocities[r],
                                &forces[r][..plan.n_home],
                                &plan.inv_mass[..plan.n_home],
                                cfg.dt_ps,
                            );
                            integrate::kinetic_energy(&velocities[r], &plan.inv_mass[..plan.n_home])
                        })
                        .collect();
                    let ke = global_ke(&kinetics);
                    for (r, _plan) in part.ranks.iter().enumerate() {
                        let (nonbonded, bonds, angles, virial) = terms[r];
                        per_rank_energies[r].push(EnergyReport {
                            nonbonded,
                            bonds,
                            angles,
                            kinetic: kinetics[r],
                            virial,
                        });
                        if let Some(t) = cfg.thermostat {
                            integrate::berendsen_scale(
                                &mut velocities[r],
                                ke,
                                ndf,
                                t.t_ref,
                                t.tau_ps,
                                cfg.dt_ps as f64,
                            );
                        }
                    }
                }
            }
        }

        self.phases.merge(&timer);

        // Gather — same loop, same accumulation order as the threaded path.
        let mut energies = vec![EnergyReport::default(); steps];
        for (r, plan) in part.ranks.iter().enumerate() {
            for (k, &g) in plan.global_ids[..plan.n_home].iter().enumerate() {
                self.system.positions[g as usize] = self.system.pbc.wrap(positions[r][k]);
                self.system.velocities[g as usize] = velocities[r][k];
            }
            for (s, e) in per_rank_energies[r].iter().enumerate() {
                energies[s].nonbonded += e.nonbonded;
                energies[s].bonds += e.bonds;
                energies[s].angles += e.angles;
                energies[s].kinetic += e.kinetic;
                energies[s].virial += e.virial;
            }
        }
        let loads = match cfg.dlb {
            DlbMode::Wallclock => rank_wall_us,
            _ => rank_work,
        };
        self.note_segment_loads(&loads);
        Ok(energies)
    }
}

#[allow(clippy::too_many_arguments)]
fn rank_segment(
    pe: &halox_shmem::Pe,
    plan: &halox_dd::RankPlan,
    ctx: &CommContext,
    bufs: &FusedBuffers,
    comm: &TwoSidedComm,
    system: &Arc<System>,
    cfg: &EngineConfig,
    steps: usize,
    part: &DdPartition,
) -> Result<RankResult, ExchangeError> {
    let n_home = plan.n_home;
    let n_local = plan.n_local();
    let params = NonbondedParams::new(cfg.cutoff);
    let frame = Frame::for_decomposition(&system.pbc, part.grid.dims);
    let wd = Watchdog::new(cfg.watchdog.deadline);
    let wd = &wd;

    // Local state: DD-frame positions (home + halo), home velocities.
    let mut positions = plan.build_positions.clone();
    let mut velocities: Vec<Vec3> = plan.global_ids[..n_home]
        .iter()
        .map(|&g| system.velocities[g as usize])
        .collect();
    let mut forces = vec![Vec3::ZERO; n_local];
    let mut energies = Vec::with_capacity(steps);

    // Pair rule: eighth-shell zone pairs minus intramolecular exclusions.
    let disp = &plan.displacement;
    let ids = &plan.global_ids;
    let sys = system.as_ref();
    let rule = move |i: usize, j: usize| {
        eighth_shell_rule(disp, i, j) && !sys.is_excluded(ids[i] as usize, ids[j] as usize)
    };

    let mut nb = NbEvaluator::new(cfg.nb_kernel);
    let mut timer = PhaseTimer::new();

    // DLB load accounting: deterministic work units (pairs + owned atoms
    // per force round) and the segment's wall time on this PE.
    let mut work: u64 = 0;
    let seg_t0 = Instant::now();

    // One signal value per exchange round (coordinate and force slots are
    // disjoint, so a round shares one value); also used as the two-sided
    // message tag. Monotone within the segment's world.
    let mut sig: u64 = 0;

    // Exchange + force-computation round shared by both integrators.
    macro_rules! force_round {
        () => {{
            sig += 1;
            // Overlap window eligibility: the one-sided transports expose a
            // post-send / pre-wait gap; with the cluster kernel and a
            // retained list the local (home–home) tile partition runs inside
            // it, off home coordinates only — arrivals touch the halo tail.
            let overlap = cfg.nb_overlap
                && nb.can_overlap()
                && matches!(
                    cfg.backend,
                    ExchangeBackend::NvshmemFused | ExchangeBackend::ThreadMpi
                );
            // --- Coordinate halo exchange ---
            match cfg.backend {
                ExchangeBackend::NvshmemFused => {
                    bufs.coords.write_slice(ctx.rank, 0, &positions[..n_home]);
                    exec::fused_pack_comm_x(pe, ctx, bufs, sig, wd)?;
                    if overlap {
                        let _s = span_opt(pe.trace(), ctx.rank as u32, "nb_local_overlap", -1);
                        nb.compute_local_overlapped(&frame, &positions, &params, &mut timer);
                    }
                    exec::wait_coordinate_arrivals(pe, ctx, sig, wd)?;
                    bufs.coords
                        .read_slice(ctx.rank, n_home, &mut positions[n_home..]);
                    // Completion ack: senders may overwrite our halo regions
                    // next step only after this (cross-step reuse fence).
                    exec::ack_coordinate_consumed(pe, ctx, sig);
                }
                ExchangeBackend::ThreadMpi => {
                    bufs.coords.write_slice(ctx.rank, 0, &positions[..n_home]);
                    exec::tmpi::coordinate_exchange(pe, ctx, bufs, sig, wd)?;
                    if overlap {
                        let _s = span_opt(pe.trace(), ctx.rank as u32, "nb_local_overlap", -1);
                        nb.compute_local_overlapped(&frame, &positions, &params, &mut timer);
                    }
                    exec::wait_coordinate_arrivals(pe, ctx, sig, wd)?;
                    bufs.coords
                        .read_slice(ctx.rank, n_home, &mut positions[n_home..]);
                    exec::ack_coordinate_consumed(pe, ctx, sig);
                }
                ExchangeBackend::Mpi => {
                    // Two-sided blocking exchange: no window to overlap.
                    exec::mpi::coordinate_exchange(
                        comm,
                        ctx,
                        sig,
                        &mut positions,
                        cfg.trace.as_deref(),
                    )?;
                }
            }

            // --- Forces: the evaluator makes this round's single staleness
            // decision (the list is rebuilt locally if a fast atom exhausts
            // the Verlet buffer early; halo *membership* stays fixed until
            // the next repartition, exactly GROMACS' behaviour between
            // neighbour-search steps), folds any overlapped local partial,
            // and runs the remaining tile partitions. ---
            forces.clear();
            forces.resize(n_local, Vec3::ZERO);
            let (nonbonded, w_nb) = {
                let _s = span_opt(pe.trace(), ctx.rank as u32, "nb_forces", -1);
                nb.compute(
                    &frame,
                    &positions,
                    &plan.kinds,
                    n_home,
                    cfg.r_comm(),
                    cfg.buffer,
                    &rule,
                    &params,
                    &mut forces,
                    &mut timer,
                )
            };
            work += nb.last_pair_count() + n_home as u64;
            let local_ident = |g: u32| Some(g);
            let bonds = compute_bonds(
                &system.pbc,
                &positions,
                &plan.bonds,
                &local_ident,
                &mut forces,
            );
            let angles = compute_angles(
                &system.pbc,
                &positions,
                &plan.angles,
                &local_ident,
                &mut forces,
            );
            // Pairs and bonded terms are each computed on exactly one rank,
            // so per-rank virials sum to the global one.
            let virial = w_nb
                + bond_virial(&system.pbc, &positions, &plan.bonds)
                + angle_virial(&system.pbc, &positions, &plan.angles);

            // --- Force halo exchange ---
            match cfg.backend {
                ExchangeBackend::NvshmemFused => {
                    // This overwrite of the whole symmetric force buffer is
                    // exactly the cross-step hazard the ack protocol fences:
                    // the previous step's `fused_comm_unpack_f` returned only
                    // after every downstream reader acked.
                    record_opt(
                        pe.trace(),
                        ctx.rank as u32,
                        Payload::RegionWrite {
                            owner: ctx.rank as u32,
                            region: Region::Forces,
                            lo: 0,
                            hi: n_local as u32,
                        },
                    );
                    bufs.forces.load_from(ctx.rank, &forces);
                    exec::fused_comm_unpack_f(pe, ctx, bufs, sig, wd)?;
                    bufs.forces.read_slice(ctx.rank, 0, &mut forces[..n_home]);
                }
                ExchangeBackend::ThreadMpi => {
                    record_opt(
                        pe.trace(),
                        ctx.rank as u32,
                        Payload::RegionWrite {
                            owner: ctx.rank as u32,
                            region: Region::Forces,
                            lo: 0,
                            hi: n_local as u32,
                        },
                    );
                    bufs.forces.load_from(ctx.rank, &forces);
                    exec::tmpi::force_exchange(pe, ctx, bufs, sig, wd)?;
                    bufs.forces.read_slice(ctx.rank, 0, &mut forces[..n_home]);
                }
                ExchangeBackend::Mpi => {
                    exec::mpi::force_exchange(comm, ctx, sig, &mut forces, cfg.trace.as_deref())?;
                }
            }
            (nonbonded, bonds, angles, virial)
        }};
    }

    macro_rules! apply_thermostat {
        ($kinetic:expr) => {
            if let Some(t) = cfg.thermostat {
                // Global kinetic energy via the PGAS all-reduce; every rank
                // derives the same (bitwise-identical, PE-index-order
                // reduced) scaling factor. Bounded like every other wait:
                // a crashed peer expires the collective instead of hanging
                // the world, so thermostatted runs ride the same recovery
                // ladder as plain ones.
                let armed = Instant::now();
                let global_ke = pe
                    .allreduce_sum_deadline($kinetic, armed + wd.deadline)
                    .ok_or_else(|| ExchangeError::CollectiveTimeout {
                        rank: ctx.rank,
                        what: "allreduce-sum(kinetic)",
                        waited_ms: armed.elapsed().as_millis() as u64,
                    })?;
                let ndf = 3.0 * system.n_atoms() as f64 - 3.0;
                integrate::berendsen_scale(
                    &mut velocities,
                    global_ke,
                    ndf,
                    t.t_ref,
                    t.tau_ps,
                    cfg.dt_ps as f64,
                );
            } else {
                let _ = $kinetic;
            }
        };
    }

    match cfg.integrator {
        crate::config::Integrator::Leapfrog => {
            for _step in 0..steps {
                let (nonbonded, bonds, angles, virial) = force_round!();
                let kinetic = integrate::kinetic_energy(&velocities, &plan.inv_mass[..n_home]);
                energies.push(EnergyReport {
                    nonbonded,
                    bonds,
                    angles,
                    kinetic,
                    virial,
                });
                apply_thermostat!(kinetic);
                integrate::leapfrog_step(
                    &mut positions[..n_home],
                    &mut velocities,
                    &forces[..n_home],
                    &plan.inv_mass[..n_home],
                    cfg.dt_ps,
                );
            }
        }
        crate::config::Integrator::VelocityVerlet => {
            // Bootstrap: forces at the segment's initial coordinates.
            let _ = force_round!();
            for _step in 0..steps {
                integrate::velocity_verlet_start(
                    &mut positions[..n_home],
                    &mut velocities,
                    &forces[..n_home],
                    &plan.inv_mass[..n_home],
                    cfg.dt_ps,
                );
                let (nonbonded, bonds, angles, virial) = force_round!();
                integrate::velocity_verlet_finish(
                    &mut velocities,
                    &forces[..n_home],
                    &plan.inv_mass[..n_home],
                    cfg.dt_ps,
                );
                // Positions and velocities are synchronous: record the
                // proper conserved energy of this step.
                let kinetic = integrate::kinetic_energy(&velocities, &plan.inv_mass[..n_home]);
                energies.push(EnergyReport {
                    nonbonded,
                    bonds,
                    angles,
                    kinetic,
                    virial,
                });
                apply_thermostat!(kinetic);
            }
        }
    }

    Ok(RankResult {
        home_ids: plan.global_ids[..n_home].to_vec(),
        positions: positions[..n_home].to_vec(),
        velocities,
        energies,
        phases: timer,
        work,
        wall_us: seg_t0.elapsed().as_micros() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use halox_md::{GrappaBuilder, MinimizeOptions, ReferenceSimulation};

    fn relaxed_system(n: usize, seed: u64) -> System {
        let mut sys = GrappaBuilder::new(n).seed(seed).temperature(200.0).build();
        halox_md::minimize::steepest_descent(&mut sys, MinimizeOptions::default());
        sys
    }

    fn run_engine(
        sys: &System,
        dims: [usize; 3],
        backend: ExchangeBackend,
        steps: usize,
    ) -> (System, RunStats) {
        let mut cfg = EngineConfig::new(backend);
        cfg.nstlist = 5;
        let mut engine = Engine::new(sys.clone(), DdGrid::new(dims), cfg);
        let stats = engine.run(steps);
        (engine.system, stats)
    }

    #[test]
    fn decomposed_forces_match_reference_first_step() {
        // Run one step with dt=0 on both the reference and the engine: the
        // recorded potential energies must agree (all pairs found once).
        let sys = relaxed_system(3000, 77);
        let mut reference = ReferenceSimulation::new(sys.clone(), 0.7, 0.1);
        let e_ref = reference.compute_forces();

        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 1;
        cfg.dt_ps = 0.0;
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let stats = engine.run(1);
        let e_dd = stats.energies[0];
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
        assert!(
            rel(e_dd.nonbonded, e_ref.nonbonded) < 1e-5,
            "{} vs {}",
            e_dd.nonbonded,
            e_ref.nonbonded
        );
        assert!(rel(e_dd.bonds, e_ref.bonds) < 1e-5);
        assert!(rel(e_dd.angles, e_ref.angles) < 1e-5);
        assert!(rel(e_dd.kinetic, e_ref.kinetic) < 1e-9);
    }

    #[test]
    fn decomposed_pressure_matches_reference() {
        let sys = relaxed_system(3000, 86);
        let volume = sys.pbc.volume();
        let mut reference = ReferenceSimulation::new(sys.clone(), 0.7, 0.1);
        let e_ref = reference.compute_forces();
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 1;
        cfg.dt_ps = 0.0;
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let stats = engine.run(1);
        let p_dd = stats.energies[0].pressure_bar(volume);
        let p_ref = e_ref.pressure_bar(volume);
        assert!(
            (p_dd - p_ref).abs() < 1e-3 * p_ref.abs().max(1.0),
            "pressure {p_dd} vs {p_ref} bar"
        );
    }

    #[test]
    fn trajectory_matches_single_rank_reference() {
        let sys = relaxed_system(3000, 78);
        let steps = 10;
        let mut reference = ReferenceSimulation::new(sys.clone(), 0.7, 0.1);
        for _ in 0..steps {
            reference.step(0.0005);
        }
        let (dd_sys, _) = run_engine(&sys, [2, 2, 1], ExchangeBackend::NvshmemFused, steps);
        let mut max_err = 0.0f32;
        for (a, b) in dd_sys.positions.iter().zip(&reference.system.positions) {
            max_err = max_err.max(sys.pbc.dist2(*a, *b).sqrt());
        }
        assert!(max_err < 2e-4, "max position deviation {max_err} nm");
    }

    #[test]
    fn all_three_backends_agree() {
        let sys = relaxed_system(3000, 79);
        let steps = 10;
        let (a, _) = run_engine(&sys, [2, 2, 1], ExchangeBackend::Mpi, steps);
        let (b, _) = run_engine(&sys, [2, 2, 1], ExchangeBackend::NvshmemFused, steps);
        let (c, _) = run_engine(&sys, [2, 2, 1], ExchangeBackend::ThreadMpi, steps);
        let mut max_err = 0.0f32;
        for ((pa, pb), pc) in a.positions.iter().zip(&b.positions).zip(&c.positions) {
            max_err = max_err.max(sys.pbc.dist2(*pa, *pb).sqrt());
            max_err = max_err.max(sys.pbc.dist2(*pa, *pc).sqrt());
        }
        assert!(max_err < 2e-4, "backend position deviation {max_err} nm");
    }

    #[test]
    fn fused_backend_consistent_across_topologies() {
        let sys = relaxed_system(3000, 80);
        let steps = 6;
        let (a, _) = run_engine(&sys, [4, 1, 1], ExchangeBackend::NvshmemFused, steps);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.topology_gpus_per_node = Some(2); // half the PEs across "IB"
        let mut engine = Engine::new(sys.clone(), DdGrid::new([4, 1, 1]), cfg);
        engine.run(steps);
        let b = engine.system;
        let mut max_err = 0.0f32;
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            max_err = max_err.max(sys.pbc.dist2(*pa, *pb).sqrt());
        }
        assert!(max_err < 2e-4, "transport position deviation {max_err} nm");
    }

    #[test]
    fn observer_sees_every_segment() {
        let sys = relaxed_system(3000, 85);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 4;
        let mut engine = Engine::new(sys, DdGrid::new([2, 1, 1]), cfg);
        let mut seen = Vec::new();
        engine.run_with_observer(10, |done, system| {
            assert_eq!(system.n_atoms(), 3000);
            seen.push(done);
        });
        assert_eq!(seen, vec![4, 8, 10]);
    }

    #[test]
    fn velocity_verlet_conserves_energy_and_matches_backends() {
        use crate::config::Integrator;
        let sys = relaxed_system(3000, 84);
        let run_vv = |backend: ExchangeBackend| {
            let mut cfg = EngineConfig::new(backend);
            cfg.nstlist = 10;
            cfg.integrator = Integrator::VelocityVerlet;
            let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
            let stats = engine.run(20);
            (engine.system, stats)
        };
        let (a, stats) = run_vv(ExchangeBackend::NvshmemFused);
        let (b, _) = run_vv(ExchangeBackend::Mpi);
        let mut max_err = 0.0f32;
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            max_err = max_err.max(sys.pbc.dist2(*pa, *pb).sqrt());
        }
        assert!(max_err < 2e-4, "vv backend deviation {max_err} nm");
        // Synchronous energies stay bounded.
        let e0 = stats.energies[0].total();
        for e in &stats.energies {
            assert!(((e.total() - e0) / e0.abs().max(1.0)).abs() < 0.3);
        }
    }

    #[test]
    fn symmetric_buffers_reused_across_segments() {
        let sys = relaxed_system(3000, 83);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 3;
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        engine.run(15); // 5 segments
        assert!(
            engine.realloc_count <= 2,
            "over-allocation should avoid reallocations: {} reallocs",
            engine.realloc_count
        );
    }

    #[test]
    fn thermostat_pulls_temperature_toward_target() {
        use crate::config::Thermostat;
        // A freshly relaxed lattice still converts potential into kinetic
        // energy while equilibrating, so compare against an uncoupled run:
        // the thermostat must hold the temperature closer to the target.
        let sys = relaxed_system(3000, 82);
        let n = sys.n_atoms() as f64;
        let temp =
            |e: &halox_md::EnergyReport| 2.0 * e.kinetic / ((3.0 * n - 3.0) * halox_md::KB as f64);
        let run = |thermostat: Option<Thermostat>| {
            let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
            cfg.nstlist = 10;
            cfg.thermostat = thermostat;
            let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
            let stats = engine.run(60);
            temp(
                stats
                    .final_energy()
                    .expect("60-step run has a final energy"),
            )
        };
        let t_free = run(None);
        let t_coupled = run(Some(Thermostat {
            t_ref: 300.0,
            tau_ps: 0.005,
        }));
        assert!(
            (t_coupled - 300.0).abs() < (t_free - 300.0).abs(),
            "coupled {t_coupled} K must be closer to 300 K than free {t_free} K"
        );
        assert!(
            t_coupled < t_free,
            "thermostat must remove equilibration heat"
        );
    }

    #[test]
    fn zero_step_run_is_graceful() {
        // Regression: consumers used `stats.energies.last().unwrap()`,
        // which panicked on `run(0)`. A zero-step run is a legal warm-up
        // request and must produce an empty — not exploding — report.
        let sys = relaxed_system(3000, 91);
        let mut engine = Engine::new(
            sys,
            DdGrid::new([2, 1, 1]),
            EngineConfig::new(ExchangeBackend::NvshmemFused),
        );
        let stats = engine.run(0);
        assert_eq!(stats.steps, 0);
        assert!(stats.energies.is_empty());
        assert!(stats.final_energy().is_none());
        assert_eq!(stats.ns_per_day, 0.0);
    }

    #[test]
    fn serial_mode_matches_threaded_bitwise() {
        use crate::config::RunMode;
        // The tentpole invariant in miniature (the full matrix lives in
        // tests/threaded_equivalence.rs): the serial reference driver and
        // the threaded per-PE executor must agree to the last bit —
        // positions, velocities and every per-step energy term.
        let sys = relaxed_system(3000, 92);
        let run_mode = |mode: RunMode| {
            let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
            cfg.nstlist = 5;
            cfg.run_mode = mode;
            cfg.thermostat = Some(crate::config::Thermostat {
                t_ref: 300.0,
                tau_ps: 0.01,
            });
            let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
            let stats = engine.run(8);
            (engine.system, stats)
        };
        let (s_sys, s_stats) = run_mode(RunMode::Serial);
        let (t_sys, t_stats) = run_mode(RunMode::Threaded);
        for (a, b) in s_sys.positions.iter().zip(&t_sys.positions) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        for (a, b) in s_sys.velocities.iter().zip(&t_sys.velocities) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        for (ea, eb) in s_stats.energies.iter().zip(&t_stats.energies) {
            assert_eq!(ea.nonbonded.to_bits(), eb.nonbonded.to_bits());
            assert_eq!(ea.kinetic.to_bits(), eb.kinetic.to_bits());
        }
    }

    #[test]
    fn fault_free_run_reports_no_recovery_activity() {
        let sys = relaxed_system(3000, 87);
        let (_, stats) = run_engine(&sys, [2, 2, 1], ExchangeBackend::NvshmemFused, 10);
        assert_eq!(stats.retries, 0);
        assert!(stats.downgrades.is_empty());
        assert!(stats.stall_reports.is_empty());
        assert_eq!(stats.degraded_steps, 0);
        assert_eq!(stats.faults_injected, 0);
    }

    #[test]
    fn transient_fault_recovers_by_retry() {
        use halox_shmem::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // Drop one signal once: the first fused segment stalls and is
        // diagnosed; the retry runs on a fresh world with the one-shot rule
        // already consumed, so the run completes on the primary transport.
        let sys = relaxed_system(3000, 88);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.watchdog.deadline = std::time::Duration::from_millis(200);
        cfg.chaos = Some(FaultPlan {
            name: "drop-once".into(),
            seed: 7,
            rules: vec![FaultRule {
                pe: Some(1),
                op: FaultOp::Signal,
                after_ops: 3,
                every: None,
                kind: FaultKind::DropSignalOnce,
            }],
        });
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let stats = engine
            .try_run(10)
            .expect("retry must absorb a one-shot fault");
        assert_eq!(stats.retries, 1, "exactly one retry expected");
        assert!(stats.downgrades.is_empty(), "no downgrade for a transient");
        assert!(!stats.stall_reports.is_empty());
        assert!(stats.faults_injected >= 1);
        assert_eq!(stats.degraded_steps, 0);
    }

    #[test]
    fn crashed_peer_degrades_to_fallback_and_completes() {
        use halox_shmem::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // A permanently crashed PE defeats every fused attempt; the ladder
        // must flip the run to the two-sided fallback (immune: no symmetric
        // deliveries) and finish all steps there.
        let sys = relaxed_system(3000, 89);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.watchdog.deadline = std::time::Duration::from_millis(150);
        cfg.chaos = Some(FaultPlan {
            name: "crash".into(),
            seed: 7,
            rules: vec![FaultRule {
                pe: Some(1),
                op: FaultOp::Any,
                after_ops: 0,
                every: None,
                kind: FaultKind::CrashPe,
            }],
        });
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let stats = engine.try_run(10).expect("fallback must complete the run");
        assert_eq!(stats.energies.len(), 10);
        assert_eq!(stats.downgrades.len(), 1, "one downgrade to the fallback");
        let d = &stats.downgrades[0];
        assert_eq!(d.from, ExchangeBackend::NvshmemFused);
        assert_eq!(d.to, ExchangeBackend::Mpi);
        assert!(!d.suspects.is_empty());
        assert!(stats.degraded_steps > 0);
        let health = engine.health().expect("health board built");
        assert!(d
            .suspects
            .iter()
            .any(|&p| { !matches!(health.state(p), crate::health::PeerState::Healthy) }));
    }

    #[test]
    fn recovered_peer_is_repromoted_to_fused_path() {
        use halox_shmem::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // A one-shot stall big enough to blow both attempts' deadlines
        // forces a downgrade; the fault never fires again, so after
        // `repromote_after` clean fallback segments the peer walks
        // quarantine → probation → healthy and the run finishes fused.
        let sys = relaxed_system(3000, 90);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 2;
        cfg.watchdog.deadline = std::time::Duration::from_millis(100);
        cfg.watchdog.max_retries = 0; // stall → immediate downgrade
        cfg.watchdog.repromote_after = 1;
        cfg.chaos = Some(FaultPlan {
            name: "drop-once".into(),
            seed: 7,
            rules: vec![FaultRule {
                pe: Some(0),
                op: FaultOp::Signal,
                after_ops: 2,
                every: None,
                kind: FaultKind::DropSignalOnce,
            }],
        });
        let mut engine = Engine::new(sys, DdGrid::new([2, 1, 1]), cfg);
        let stats = engine.try_run(10).expect("run must complete");
        assert_eq!(stats.downgrades.len(), 1);
        assert!(stats.repromotions >= 1, "suspect peer must be re-promoted");
        let health = engine.health().expect("health board built");
        for p in 0..2 {
            assert_eq!(health.state(p), crate::health::PeerState::Healthy);
        }
        // Degraded span is bounded: quarantine (1 segment) + probation
        // entry; the tail of the run is fused again.
        assert!(stats.degraded_steps < stats.steps);
    }

    #[test]
    fn infeasible_grid_is_a_config_time_error() {
        // 4096 ranks on a ~3 k atom box: every factorization is too thin.
        let sys = GrappaBuilder::new(3000).seed(93).build();
        let err = Engine::try_new_auto(
            sys,
            4096,
            &GridOptions::default(),
            EngineConfig::new(ExchangeBackend::Mpi),
        )
        .expect_err("infeasible decomposition must be rejected");
        assert!(matches!(err, EngineError::InfeasibleGrid(_)), "{err:?}");
        let msg = err.to_string();
        assert!(
            msg.contains("4096") && msg.contains("box"),
            "message must carry rank count and box: {msg}"
        );
    }

    #[test]
    fn spanning_bonded_term_surfaces_as_plan_error() {
        use halox_md::topology::Angle;
        use halox_md::{AtomKind, PbcBox};
        // An angle strung across all three domains of a [3,1,1] grid: the
        // run must fail with a typed plan error naming the atoms, on both
        // the threaded and the serial driver — not panic mid-plan.
        let positions = vec![
            Vec3::new(1.5, 4.5, 4.5),
            Vec3::new(4.5, 4.5, 4.5),
            Vec3::new(7.5, 4.5, 4.5),
        ];
        let n = positions.len();
        let sys = System {
            pbc: PbcBox::cubic(9.0),
            positions,
            velocities: vec![Vec3::ZERO; n],
            kinds: vec![AtomKind::Ow; n],
            inv_mass: vec![1.0; n],
            bonds: vec![],
            angles: vec![Angle {
                i: 0,
                j: 1,
                k_atom: 2,
                theta0: 1.9,
                k: 400.0,
            }],
            molecule_of: vec![0; n],
            exclusions: vec![vec![]; n],
        };
        for mode in [RunMode::Threaded, RunMode::Serial] {
            let mut cfg = EngineConfig::new(ExchangeBackend::Mpi);
            cfg.run_mode = mode;
            let mut engine = Engine::new(sys.clone(), DdGrid::new([3, 1, 1]), cfg);
            let err = engine.try_run(1).expect_err("plan must be rejected");
            assert!(matches!(err, EngineError::PlanFailed(_)), "{err:?}");
            assert!(err.to_string().contains("[0, 1, 2]"), "{err}");
        }
    }

    fn ckpt_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("halox-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn assert_same_trajectory(a: &System, b: &System, ea: &[EnergyReport], eb: &[EnergyReport]) {
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            assert_eq!(pa.x.to_bits(), pb.x.to_bits());
            assert_eq!(pa.y.to_bits(), pb.y.to_bits());
            assert_eq!(pa.z.to_bits(), pb.z.to_bits());
        }
        for (va, vb) in a.velocities.iter().zip(&b.velocities) {
            assert_eq!(va.x.to_bits(), vb.x.to_bits());
            assert_eq!(va.y.to_bits(), vb.y.to_bits());
            assert_eq!(va.z.to_bits(), vb.z.to_bits());
        }
        assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(eb) {
            assert_eq!(x.total().to_bits(), y.total().to_bits());
        }
    }

    #[test]
    fn resume_continues_trajectory_bitwise() {
        use crate::config::CheckpointConfig;
        // Kill-at-k contract in miniature (the executor × transport matrix
        // lives in tests/backend_conformance.rs): run 5 steps with
        // checkpointing, throw the engine away — the "kill" — resume from
        // the newest file, run 5 more. The result must be bitwise-equal to
        // an uninterrupted 10-step run without checkpointing at all.
        let sys = relaxed_system(3000, 94);
        let mk_cfg = |dir: Option<&std::path::Path>| {
            let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
            cfg.nstlist = 5;
            cfg.run_mode = RunMode::Serial;
            cfg.thermostat = Some(crate::config::Thermostat {
                t_ref: 300.0,
                tau_ps: 0.01,
            });
            cfg.checkpoint = dir.map(CheckpointConfig::in_dir);
            cfg
        };
        let mut reference = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), mk_cfg(None));
        let ref_stats = reference.run(10);

        let dir = ckpt_dir("resume");
        let mut first = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), mk_cfg(Some(&dir)));
        let first_stats = first.run(5);
        assert_eq!(first_stats.steps, 5);
        // Baseline at step 0 plus one per segment.
        assert_eq!(first_stats.checkpoints_written, 2);
        drop(first);

        let mut resumed = Engine::resume_latest(&dir, mk_cfg(Some(&dir))).expect("resume");
        assert_eq!(resumed.resumed(), Some((5, 0)));
        let stats = resumed.run(5);
        assert_eq!(stats.steps, 10, "stats describe the whole trajectory");
        assert_eq!(stats.corrupt_checkpoints_skipped, 0);
        assert!(stats.checkpoints_written > first_stats.checkpoints_written);
        assert_same_trajectory(
            &reference.system,
            &resumed.system,
            &ref_stats.energies,
            &stats.energies,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_under_mismatched_config_is_refused() {
        use crate::config::CheckpointConfig;
        let sys = relaxed_system(3000, 95);
        let dir = ckpt_dir("mismatch");
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.run_mode = RunMode::Serial;
        cfg.checkpoint = Some(CheckpointConfig::in_dir(&dir));
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg.clone());
        engine.run(5);
        drop(engine);

        let mut other = cfg.clone();
        other.backend = ExchangeBackend::Mpi;
        let err = Engine::resume_latest(&dir, other).expect_err("transport changed");
        assert!(
            matches!(
                &err,
                EngineError::Checkpoint(CheckpointError::Mismatch {
                    field: "transport",
                    ..
                })
            ),
            "{err}"
        );
        let mut other = cfg.clone();
        other.dt_ps = 0.001;
        let err = Engine::resume_latest(&dir, other).expect_err("timestep changed");
        assert!(
            matches!(
                &err,
                EngineError::Checkpoint(CheckpointError::Mismatch { field: "dt_ps", .. })
            ),
            "{err}"
        );
        // The matching config still resumes fine.
        assert!(Engine::resume_latest(&dir, cfg).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_pe_recovers_by_rewind_and_replay_bitwise() {
        use crate::config::CheckpointConfig;
        use halox_shmem::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // Terminal-failure recovery under the threads backend: the fallback
        // is pinned to the primary and retries are off, so the one-shot
        // KillPe (crash-drop semantics in-process) makes the first segment
        // fail terminally. The supervisor must rewind to the baseline
        // checkpoint, revive the peer, replay, and finish — and because the
        // one-shot trigger stays consumed across the rewind, the replayed
        // trajectory must be bitwise-identical to a fault-free run.
        let sys = relaxed_system(3000, 96);
        let dir = ckpt_dir("rewind");
        let mk_cfg = |ckpt: Option<CheckpointConfig>| {
            let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
            cfg.nstlist = 5;
            cfg.watchdog.deadline = std::time::Duration::from_millis(150);
            cfg.watchdog.max_retries = 0;
            cfg.watchdog.fallback = ExchangeBackend::NvshmemFused;
            cfg.checkpoint = ckpt;
            cfg
        };
        let mut reference = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), mk_cfg(None));
        let ref_stats = reference.run(10);

        let mut cfg = mk_cfg(Some(CheckpointConfig::in_dir(&dir)));
        cfg.chaos = Some(FaultPlan {
            name: "kill-once".into(),
            seed: 7,
            rules: vec![FaultRule {
                pe: Some(1),
                op: FaultOp::Any,
                after_ops: 0,
                every: None,
                kind: FaultKind::KillPe,
            }],
        });
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let stats = engine
            .try_run(10)
            .expect("rewind-and-replay must absorb the kill");
        assert_eq!(stats.recoveries, 1, "exactly one rewind");
        assert_eq!(stats.steps, 10);
        assert!(stats.faults_injected >= 1);
        assert_same_trajectory(
            &reference.system,
            &engine.system,
            &ref_stats.energies,
            &stats.energies,
        );
        // The revived peer served its probation and is healthy again.
        let health = engine.health().expect("health board built");
        assert_eq!(health.state(1), crate::health::PeerState::Healthy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_without_headroom_still_fails_typed() {
        use halox_shmem::{FaultKind, FaultOp, FaultPlan, FaultRule};
        // Same terminal kill, but checkpointing disabled: no rewind target,
        // so the run must surface the typed SegmentFailed — never hang,
        // never panic.
        let sys = relaxed_system(3000, 97);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.watchdog.deadline = std::time::Duration::from_millis(150);
        cfg.watchdog.max_retries = 0;
        cfg.watchdog.fallback = ExchangeBackend::NvshmemFused;
        cfg.chaos = Some(FaultPlan {
            name: "kill".into(),
            seed: 7,
            rules: vec![FaultRule {
                pe: Some(1),
                op: FaultOp::Any,
                after_ops: 0,
                every: None,
                kind: FaultKind::KillPe,
            }],
        });
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let err = engine.try_run(10).expect_err("no checkpoint, no recovery");
        assert!(
            matches!(err, EngineError::SegmentFailed { at_step: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn keep_pruning_deletes_old_checkpoints_and_latest_resolves() {
        use crate::config::CheckpointConfig;
        let dir = ckpt_dir("keep-prune");
        let sys = relaxed_system(3000, 55);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.run_mode = RunMode::Serial;
        let mut ck = CheckpointConfig::in_dir(&dir);
        ck.every_segments = 1;
        ck.keep = 2;
        cfg.checkpoint = Some(ck);
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg.clone());
        // 6 segments: snapshots at 0 (baseline), 5, 10, ..., 30.
        let stats = engine.run(30);
        assert_eq!(stats.checkpoints_written, 7);
        let steps: Vec<u64> = Checkpoint::list(&dir).into_iter().map(|(s, _)| s).collect();
        assert_eq!(
            steps,
            vec![25, 30],
            "only the newest `keep` files may survive pruning"
        );
        let (latest, skipped) = Checkpoint::latest_valid(&dir).expect("latest resolves");
        assert_eq!(latest.step, 30);
        assert_eq!(skipped, 0);
        // And the survivors are genuinely resumable.
        assert!(Engine::resume_latest(&dir, cfg).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphan_tmp_files_are_swept_on_checkpoint_dir_open() {
        use crate::config::CheckpointConfig;
        let dir = ckpt_dir("orphan-sweep");
        std::fs::create_dir_all(&dir).unwrap();
        // A crashed writer's leftovers (foreign pid) and a live writer's
        // in-flight tmp (our pid): only the former may be reclaimed.
        let orphan_a = dir.join(".ckpt-000000000005.hxck.tmp.999991");
        let orphan_b = dir.join(".ckpt-000000000010.hxck.tmp.999992");
        let live = dir.join(format!(
            ".ckpt-000000000099.hxck.tmp.{}",
            std::process::id()
        ));
        for p in [&orphan_a, &orphan_b, &live] {
            std::fs::write(p, b"torn").unwrap();
        }
        let sys = relaxed_system(3000, 56);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.run_mode = RunMode::Serial;
        cfg.checkpoint = Some(CheckpointConfig::in_dir(&dir));
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let stats = engine.run(5);
        assert_eq!(stats.orphan_tmp_swept, 2);
        assert!(!orphan_a.exists() && !orphan_b.exists());
        assert!(live.exists(), "current-pid tmp files must be left alone");
        // The sweep is once-per-engine: a second run reports the same tally
        // without re-counting.
        let stats = engine.run(5);
        assert_eq!(stats.orphan_tmp_swept, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_debug_is_a_summary() {
        let sys = relaxed_system(3000, 57);
        let engine = Engine::new(
            sys,
            DdGrid::new([2, 2, 1]),
            EngineConfig::new(ExchangeBackend::NvshmemFused),
        );
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("Engine") && dbg.contains("n_atoms"), "{dbg}");
        // The summary must not dump per-atom state.
        assert!(dbg.len() < 500, "{}", dbg.len());
    }

    fn relaxed_skewed(n: usize, seed: u64) -> System {
        use halox_md::{SkewProfile, SkewedBuilder};
        let mut sys = SkewedBuilder::new(n, SkewProfile::Interface)
            .seed(seed)
            .temperature(220.0)
            .build();
        halox_md::minimize::steepest_descent(&mut sys, MinimizeOptions::default());
        sys
    }

    #[test]
    fn dlb_counter_mode_is_bitwise_across_executors() {
        use crate::config::DlbMode;
        // The §3.8 contract in miniature: with the deterministic counter
        // metric, both executors feed the controller identical loads, so
        // boundaries — and therefore trajectories — stay bitwise equal
        // even though the decomposition is being re-shaped mid-run.
        let sys = relaxed_skewed(3000, 41);
        let run = |mode: RunMode| {
            let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
            cfg.nstlist = 5;
            cfg.dlb = DlbMode::Counter;
            cfg.run_mode = mode;
            let mut engine = Engine::new(sys.clone(), DdGrid::new([4, 1, 1]), cfg);
            let stats = engine.run(15);
            (engine, stats)
        };
        let (s_eng, s_stats) = run(RunMode::Serial);
        let (t_eng, t_stats) = run(RunMode::Threaded);
        assert_eq!(s_stats.dlb_updates, 3, "one update per segment");
        assert!(
            !s_eng.bounds().is_uniform(),
            "a skewed interface system must move boundaries"
        );
        for d in 0..3 {
            for (a, b) in s_eng.bounds().fracs[d].iter().zip(&t_eng.bounds().fracs[d]) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(s_stats.rank_loads, t_stats.rank_loads);
        assert_eq!(s_stats.critical_load, t_stats.critical_load);
        for (a, b) in s_eng.system.positions.iter().zip(&t_eng.system.positions) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }

    #[test]
    fn dlb_reduces_load_imbalance_on_skewed_system() {
        use crate::config::DlbMode;
        let sys = relaxed_skewed(4000, 42);
        let run = |dlb: DlbMode| {
            let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
            cfg.nstlist = 5;
            cfg.run_mode = RunMode::Serial;
            cfg.dlb = dlb;
            let mut engine = Engine::new(sys.clone(), DdGrid::new([4, 1, 1]), cfg);
            // Warm-up run lets the controller converge; the second run's
            // loads measure the balanced steady state.
            engine.run(15);
            engine.run(15)
        };
        let r_static = run(DlbMode::Off).load_ratio().expect("loads recorded");
        let r_dlb = run(DlbMode::Counter).load_ratio().expect("loads recorded");
        assert!(
            r_dlb < r_static,
            "DLB must improve max/mean load: static {r_static:.3}, dlb {r_dlb:.3}"
        );
        assert!(r_static > 1.2, "interface system must start imbalanced");
    }

    #[test]
    fn dlb_off_reports_static_loads_without_moving_bounds() {
        let sys = relaxed_system(3000, 43);
        let (mut cfg, dims) = (EngineConfig::new(ExchangeBackend::NvshmemFused), [2, 2, 1]);
        cfg.nstlist = 5;
        let mut engine = Engine::new(sys, DdGrid::new(dims), cfg);
        let stats = engine.run(10);
        assert_eq!(stats.dlb_updates, 0);
        assert!(engine.bounds().is_uniform());
        assert_eq!(stats.rank_loads.len(), 4);
        assert!(stats.rank_loads.iter().all(|&w| w > 0));
        assert!(stats.critical_load >= *stats.rank_loads.iter().max().unwrap() / 2);
        let ratio = stats.load_ratio().expect("loads recorded");
        assert!(ratio >= 1.0);
    }

    #[test]
    fn energy_stays_bounded_across_repartitions() {
        let sys = relaxed_system(3000, 81);
        let (_, stats) = run_engine(&sys, [2, 2, 1], ExchangeBackend::NvshmemFused, 30);
        assert_eq!(stats.energies.len(), 30);
        let e0 = stats.energies[0].total();
        for (s, e) in stats.energies.iter().enumerate() {
            assert!(e.total().is_finite(), "energy diverged at step {s}");
            let rel = ((e.total() - e0) / e0.abs().max(1.0)).abs();
            assert!(rel < 0.3, "energy excursion {rel} at step {s}");
        }
        assert!(stats.ns_per_day > 0.0);
    }
}
