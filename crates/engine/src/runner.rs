//! The domain-decomposed MD engine: multi-PE time stepping over a halo
//! exchange backend.
//!
//! One PE (thread) per DD rank executes the GPU-resident step skeleton of
//! the paper's Algorithm 2, functionally:
//!
//! 1. coordinate halo exchange (fused NVSHMEM-style or serialized MPI-style)
//! 2. bonded + non-bonded forces on home+halo copies (zone-pair rule)
//! 3. force halo exchange (+ accumulation)
//! 4. leapfrog integration of home atoms
//!
//! Every `nstlist` steps the decomposition is rebuilt centrally (the role of
//! GROMACS' neighbour-search / DD repartition step), coordinates are gathered
//! and re-scattered, and PEs get fresh index maps.

use crate::config::{EngineConfig, ExchangeBackend};
use halox_core::{build_contexts, exec, CommContext, FusedBuffers};
use halox_dd::{build_partition, DdGrid, DdPartition};
use halox_md::forces::{
    angle_virial, bond_virial, compute_angles, compute_bonds, compute_nonbonded_virial,
    NonbondedParams,
};
use halox_md::pairlist::eighth_shell_rule;
use halox_md::{integrate, EnergyReport, Frame, PairList, System, Vec3};
use halox_shmem::{ShmemWorld, TwoSidedComm};
use halox_trace::{record_opt, Payload, Region};
use std::sync::Arc;
use std::time::Instant;

/// Aggregated results of a run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Per-step global energies (summed over ranks).
    pub energies: Vec<EnergyReport>,
    pub steps: usize,
    pub wall_seconds: f64,
    /// ns/day achieved by the functional engine (wall-clock based — this is
    /// host performance of the reproduction, not the paper's GPU numbers;
    /// those come from the timing plane).
    pub ns_per_day: f64,
}

/// Per-rank state carried across a segment and returned to the gatherer.
struct RankResult {
    home_ids: Vec<u32>,
    positions: Vec<Vec3>,
    velocities: Vec<Vec3>,
    energies: Vec<EnergyReport>,
}

/// The engine owns the global system and runs it decomposed over `grid`.
pub struct Engine {
    pub system: System,
    pub grid: DdGrid,
    pub config: EngineConfig,
    /// Symmetric buffers kept across segments (GROMACS-style
    /// over-allocation, paper §5.3: "thanks to the over-allocation strategy,
    /// resizing is rarely required").
    cached_buffers: Option<(FusedBuffers, usize, usize)>,
    /// How many times a segment had to reallocate the symmetric buffers.
    pub realloc_count: usize,
}

impl Engine {
    pub fn new(system: System, grid: DdGrid, config: EngineConfig) -> Self {
        Engine {
            system,
            grid,
            config,
            cached_buffers: None,
            realloc_count: 0,
        }
    }

    /// Advance `n_steps`; returns per-step energies and throughput.
    pub fn run(&mut self, n_steps: usize) -> RunStats {
        self.run_with_observer(n_steps, |_, _| {})
    }

    /// Like [`Engine::run`], calling `observer(steps_done, &system)` after
    /// every neighbour-search segment, when the gathered global system is
    /// coherent — the hook for trajectory writing and on-the-fly analysis.
    pub fn run_with_observer(
        &mut self,
        n_steps: usize,
        mut observer: impl FnMut(usize, &System),
    ) -> RunStats {
        let t0 = Instant::now();
        let mut energies = Vec::with_capacity(n_steps);
        let mut done = 0;
        while done < n_steps {
            let segment = self.config.nstlist.min(n_steps - done);
            let seg_energies = self.run_segment(segment);
            energies.extend(seg_energies);
            done += segment;
            observer(done, &self.system);
        }
        let wall = t0.elapsed().as_secs_f64();
        RunStats {
            steps: n_steps,
            wall_seconds: wall,
            ns_per_day: if wall > 0.0 {
                (n_steps as f64 * self.config.dt_ps as f64 * 1e-3) / (wall / 86_400.0)
            } else {
                0.0
            },
            energies,
        }
    }

    /// One neighbour-search segment: partition, exchange/step loop, gather.
    fn run_segment(&mut self, steps: usize) -> Vec<EnergyReport> {
        let cfg = self.config.clone();
        let part = build_partition(&self.system, &self.grid, cfg.r_comm());
        let ctxs = build_contexts(&part);
        let n_ranks = part.n_ranks();
        let system = Arc::new(self.system.clone());
        let total_pulses = part.total_pulses();

        let mut world = ShmemWorld::new(
            cfg.topology(n_ranks),
            CommContext::slots_needed(total_pulses),
        );
        if let Some(rec) = &cfg.trace {
            world = world.with_trace(Arc::clone(rec));
        }
        // Symmetric allocation with over-allocation: reuse the buffers from
        // the previous segment when capacities still fit, else grow by 10%.
        let need_buf = ctxs[0].buf_capacity;
        let need_stage = ctxs[0].stage_capacity.max(1);
        let bufs = match self.cached_buffers.take() {
            Some((b, cap_buf, cap_stage)) if cap_buf >= need_buf && cap_stage >= need_stage => b,
            _ => {
                self.realloc_count += 1;
                let mut padded = ctxs[0].clone();
                padded.buf_capacity = need_buf + need_buf / 10;
                padded.stage_capacity = need_stage + need_stage / 10;
                FusedBuffers::alloc(n_ranks, &padded)
            }
        };
        let comm = TwoSidedComm::new(n_ranks);

        let part_ref = &part;
        let ctxs_ref = &ctxs;
        let bufs_ref = &bufs;
        let comm_ref = &comm;
        let sys_ref = &system;

        let mut results = world.run(|pe| {
            rank_segment(
                pe,
                &part_ref.ranks[pe.id],
                &ctxs_ref[pe.id],
                bufs_ref,
                comm_ref,
                sys_ref,
                &cfg,
                steps,
                part_ref,
            )
        });

        self.cached_buffers = Some((bufs.clone(), bufs.coords.len(), bufs.force_stage.len()));

        // Gather home atoms back into the global system.
        let mut energies = vec![EnergyReport::default(); steps];
        for r in results.drain(..) {
            for (k, &g) in r.home_ids.iter().enumerate() {
                self.system.positions[g as usize] = self.system.pbc.wrap(r.positions[k]);
                self.system.velocities[g as usize] = r.velocities[k];
            }
            for (s, e) in r.energies.iter().enumerate() {
                energies[s].nonbonded += e.nonbonded;
                energies[s].bonds += e.bonds;
                energies[s].angles += e.angles;
                energies[s].kinetic += e.kinetic;
                energies[s].virial += e.virial;
            }
        }
        energies
    }
}

#[allow(clippy::too_many_arguments)]
fn rank_segment(
    pe: &halox_shmem::Pe,
    plan: &halox_dd::RankPlan,
    ctx: &CommContext,
    bufs: &FusedBuffers,
    comm: &TwoSidedComm,
    system: &Arc<System>,
    cfg: &EngineConfig,
    steps: usize,
    part: &DdPartition,
) -> RankResult {
    let n_home = plan.n_home;
    let n_local = plan.n_local();
    let params = NonbondedParams::new(cfg.cutoff);
    let frame = Frame::for_decomposition(&system.pbc, part.grid.dims);

    // Local state: DD-frame positions (home + halo), home velocities.
    let mut positions = plan.build_positions.clone();
    let mut velocities: Vec<Vec3> = plan.global_ids[..n_home]
        .iter()
        .map(|&g| system.velocities[g as usize])
        .collect();
    let mut forces = vec![Vec3::ZERO; n_local];
    let mut energies = Vec::with_capacity(steps);

    // Pair rule: eighth-shell zone pairs minus intramolecular exclusions.
    let disp = &plan.displacement;
    let ids = &plan.global_ids;
    let sys = system.as_ref();
    let rule = move |i: usize, j: usize| {
        eighth_shell_rule(disp, i, j) && !sys.is_excluded(ids[i] as usize, ids[j] as usize)
    };

    let mut pairlist: Option<PairList> = None;

    // One signal value per exchange round (coordinate and force slots are
    // disjoint, so a round shares one value); also used as the two-sided
    // message tag. Monotone within the segment's world.
    let mut sig: u64 = 0;

    // Exchange + force-computation round shared by both integrators.
    macro_rules! force_round {
        () => {{
            sig += 1;
            // --- Coordinate halo exchange ---
            match cfg.backend {
                ExchangeBackend::NvshmemFused => {
                    bufs.coords.write_slice(ctx.rank, 0, &positions[..n_home]);
                    exec::fused_pack_comm_x(pe, ctx, bufs, sig);
                    exec::wait_coordinate_arrivals(pe, ctx, sig);
                    bufs.coords
                        .read_slice(ctx.rank, n_home, &mut positions[n_home..]);
                    // Completion ack: senders may overwrite our halo regions
                    // next step only after this (cross-step reuse fence).
                    exec::ack_coordinate_consumed(pe, ctx, sig);
                }
                ExchangeBackend::ThreadMpi => {
                    bufs.coords.write_slice(ctx.rank, 0, &positions[..n_home]);
                    exec::tmpi::coordinate_exchange(pe, ctx, bufs, sig);
                    exec::wait_coordinate_arrivals(pe, ctx, sig);
                    bufs.coords
                        .read_slice(ctx.rank, n_home, &mut positions[n_home..]);
                    exec::ack_coordinate_consumed(pe, ctx, sig);
                }
                ExchangeBackend::Mpi => {
                    exec::mpi::coordinate_exchange(
                        comm,
                        ctx,
                        sig,
                        &mut positions,
                        cfg.trace.as_deref(),
                    );
                }
            }

            // --- Pair list: built on the segment's first round; rebuilt
            // locally if a fast atom exhausts the Verlet buffer early
            // (halo *membership* stays fixed until the next repartition,
            // exactly GROMACS' behaviour between neighbour-search steps —
            // the buffer is what guarantees coverage in the interim). ---
            let stale = pairlist
                .as_ref()
                .is_none_or(|pl| pl.needs_rebuild(&positions, cfg.buffer));
            if stale {
                pairlist = Some(PairList::build_in_frame(
                    &frame,
                    &positions,
                    cfg.r_comm(),
                    &rule,
                ));
            }
            let pl = pairlist.as_ref().expect("pair list just ensured");

            // --- Forces ---
            forces.clear();
            forces.resize(n_local, Vec3::ZERO);
            let (nonbonded, w_nb) =
                compute_nonbonded_virial(&frame, &positions, &plan.kinds, pl, &params, &mut forces);
            let local_ident = |g: u32| Some(g);
            let bonds = compute_bonds(
                &system.pbc,
                &positions,
                &plan.bonds,
                &local_ident,
                &mut forces,
            );
            let angles = compute_angles(
                &system.pbc,
                &positions,
                &plan.angles,
                &local_ident,
                &mut forces,
            );
            // Pairs and bonded terms are each computed on exactly one rank,
            // so per-rank virials sum to the global one.
            let virial = w_nb
                + bond_virial(&system.pbc, &positions, &plan.bonds)
                + angle_virial(&system.pbc, &positions, &plan.angles);

            // --- Force halo exchange ---
            match cfg.backend {
                ExchangeBackend::NvshmemFused => {
                    // This overwrite of the whole symmetric force buffer is
                    // exactly the cross-step hazard the ack protocol fences:
                    // the previous step's `fused_comm_unpack_f` returned only
                    // after every downstream reader acked.
                    record_opt(
                        pe.trace(),
                        ctx.rank as u32,
                        Payload::RegionWrite {
                            owner: ctx.rank as u32,
                            region: Region::Forces,
                            lo: 0,
                            hi: n_local as u32,
                        },
                    );
                    bufs.forces.load_from(ctx.rank, &forces);
                    exec::fused_comm_unpack_f(pe, ctx, bufs, sig);
                    bufs.forces.read_slice(ctx.rank, 0, &mut forces[..n_home]);
                }
                ExchangeBackend::ThreadMpi => {
                    record_opt(
                        pe.trace(),
                        ctx.rank as u32,
                        Payload::RegionWrite {
                            owner: ctx.rank as u32,
                            region: Region::Forces,
                            lo: 0,
                            hi: n_local as u32,
                        },
                    );
                    bufs.forces.load_from(ctx.rank, &forces);
                    exec::tmpi::force_exchange(pe, ctx, bufs, sig);
                    bufs.forces.read_slice(ctx.rank, 0, &mut forces[..n_home]);
                }
                ExchangeBackend::Mpi => {
                    exec::mpi::force_exchange(comm, ctx, sig, &mut forces, cfg.trace.as_deref());
                }
            }
            (nonbonded, bonds, angles, virial)
        }};
    }

    macro_rules! apply_thermostat {
        ($kinetic:expr) => {
            if let Some(t) = cfg.thermostat {
                // Global kinetic energy via the PGAS all-reduce; every rank
                // derives the same scaling factor.
                let global_ke = pe.allreduce_sum($kinetic);
                let ndf = 3.0 * system.n_atoms() as f64 - 3.0;
                integrate::berendsen_scale(
                    &mut velocities,
                    global_ke,
                    ndf,
                    t.t_ref,
                    t.tau_ps,
                    cfg.dt_ps as f64,
                );
            } else {
                let _ = $kinetic;
            }
        };
    }

    match cfg.integrator {
        crate::config::Integrator::Leapfrog => {
            for _step in 0..steps {
                let (nonbonded, bonds, angles, virial) = force_round!();
                let kinetic = integrate::kinetic_energy(&velocities, &plan.inv_mass[..n_home]);
                energies.push(EnergyReport {
                    nonbonded,
                    bonds,
                    angles,
                    kinetic,
                    virial,
                });
                apply_thermostat!(kinetic);
                integrate::leapfrog_step(
                    &mut positions[..n_home],
                    &mut velocities,
                    &forces[..n_home],
                    &plan.inv_mass[..n_home],
                    cfg.dt_ps,
                );
            }
        }
        crate::config::Integrator::VelocityVerlet => {
            // Bootstrap: forces at the segment's initial coordinates.
            let _ = force_round!();
            for _step in 0..steps {
                integrate::velocity_verlet_start(
                    &mut positions[..n_home],
                    &mut velocities,
                    &forces[..n_home],
                    &plan.inv_mass[..n_home],
                    cfg.dt_ps,
                );
                let (nonbonded, bonds, angles, virial) = force_round!();
                integrate::velocity_verlet_finish(
                    &mut velocities,
                    &forces[..n_home],
                    &plan.inv_mass[..n_home],
                    cfg.dt_ps,
                );
                // Positions and velocities are synchronous: record the
                // proper conserved energy of this step.
                let kinetic = integrate::kinetic_energy(&velocities, &plan.inv_mass[..n_home]);
                energies.push(EnergyReport {
                    nonbonded,
                    bonds,
                    angles,
                    kinetic,
                    virial,
                });
                apply_thermostat!(kinetic);
            }
        }
    }

    RankResult {
        home_ids: plan.global_ids[..n_home].to_vec(),
        positions: positions[..n_home].to_vec(),
        velocities,
        energies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halox_md::{GrappaBuilder, MinimizeOptions, ReferenceSimulation};

    fn relaxed_system(n: usize, seed: u64) -> System {
        let mut sys = GrappaBuilder::new(n).seed(seed).temperature(200.0).build();
        halox_md::minimize::steepest_descent(&mut sys, MinimizeOptions::default());
        sys
    }

    fn run_engine(
        sys: &System,
        dims: [usize; 3],
        backend: ExchangeBackend,
        steps: usize,
    ) -> (System, RunStats) {
        let mut cfg = EngineConfig::new(backend);
        cfg.nstlist = 5;
        let mut engine = Engine::new(sys.clone(), DdGrid::new(dims), cfg);
        let stats = engine.run(steps);
        (engine.system, stats)
    }

    #[test]
    fn decomposed_forces_match_reference_first_step() {
        // Run one step with dt=0 on both the reference and the engine: the
        // recorded potential energies must agree (all pairs found once).
        let sys = relaxed_system(3000, 77);
        let mut reference = ReferenceSimulation::new(sys.clone(), 0.7, 0.1);
        let e_ref = reference.compute_forces();

        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 1;
        cfg.dt_ps = 0.0;
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let stats = engine.run(1);
        let e_dd = stats.energies[0];
        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1.0);
        assert!(
            rel(e_dd.nonbonded, e_ref.nonbonded) < 1e-5,
            "{} vs {}",
            e_dd.nonbonded,
            e_ref.nonbonded
        );
        assert!(rel(e_dd.bonds, e_ref.bonds) < 1e-5);
        assert!(rel(e_dd.angles, e_ref.angles) < 1e-5);
        assert!(rel(e_dd.kinetic, e_ref.kinetic) < 1e-9);
    }

    #[test]
    fn decomposed_pressure_matches_reference() {
        let sys = relaxed_system(3000, 86);
        let volume = sys.pbc.volume();
        let mut reference = ReferenceSimulation::new(sys.clone(), 0.7, 0.1);
        let e_ref = reference.compute_forces();
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 1;
        cfg.dt_ps = 0.0;
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        let stats = engine.run(1);
        let p_dd = stats.energies[0].pressure_bar(volume);
        let p_ref = e_ref.pressure_bar(volume);
        assert!(
            (p_dd - p_ref).abs() < 1e-3 * p_ref.abs().max(1.0),
            "pressure {p_dd} vs {p_ref} bar"
        );
    }

    #[test]
    fn trajectory_matches_single_rank_reference() {
        let sys = relaxed_system(3000, 78);
        let steps = 10;
        let mut reference = ReferenceSimulation::new(sys.clone(), 0.7, 0.1);
        for _ in 0..steps {
            reference.step(0.0005);
        }
        let (dd_sys, _) = run_engine(&sys, [2, 2, 1], ExchangeBackend::NvshmemFused, steps);
        let mut max_err = 0.0f32;
        for (a, b) in dd_sys.positions.iter().zip(&reference.system.positions) {
            max_err = max_err.max(sys.pbc.dist2(*a, *b).sqrt());
        }
        assert!(max_err < 2e-4, "max position deviation {max_err} nm");
    }

    #[test]
    fn all_three_backends_agree() {
        let sys = relaxed_system(3000, 79);
        let steps = 10;
        let (a, _) = run_engine(&sys, [2, 2, 1], ExchangeBackend::Mpi, steps);
        let (b, _) = run_engine(&sys, [2, 2, 1], ExchangeBackend::NvshmemFused, steps);
        let (c, _) = run_engine(&sys, [2, 2, 1], ExchangeBackend::ThreadMpi, steps);
        let mut max_err = 0.0f32;
        for ((pa, pb), pc) in a.positions.iter().zip(&b.positions).zip(&c.positions) {
            max_err = max_err.max(sys.pbc.dist2(*pa, *pb).sqrt());
            max_err = max_err.max(sys.pbc.dist2(*pa, *pc).sqrt());
        }
        assert!(max_err < 2e-4, "backend position deviation {max_err} nm");
    }

    #[test]
    fn fused_backend_consistent_across_topologies() {
        let sys = relaxed_system(3000, 80);
        let steps = 6;
        let (a, _) = run_engine(&sys, [4, 1, 1], ExchangeBackend::NvshmemFused, steps);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.topology_gpus_per_node = Some(2); // half the PEs across "IB"
        let mut engine = Engine::new(sys.clone(), DdGrid::new([4, 1, 1]), cfg);
        engine.run(steps);
        let b = engine.system;
        let mut max_err = 0.0f32;
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            max_err = max_err.max(sys.pbc.dist2(*pa, *pb).sqrt());
        }
        assert!(max_err < 2e-4, "transport position deviation {max_err} nm");
    }

    #[test]
    fn observer_sees_every_segment() {
        let sys = relaxed_system(3000, 85);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 4;
        let mut engine = Engine::new(sys, DdGrid::new([2, 1, 1]), cfg);
        let mut seen = Vec::new();
        engine.run_with_observer(10, |done, system| {
            assert_eq!(system.n_atoms(), 3000);
            seen.push(done);
        });
        assert_eq!(seen, vec![4, 8, 10]);
    }

    #[test]
    fn velocity_verlet_conserves_energy_and_matches_backends() {
        use crate::config::Integrator;
        let sys = relaxed_system(3000, 84);
        let run_vv = |backend: ExchangeBackend| {
            let mut cfg = EngineConfig::new(backend);
            cfg.nstlist = 10;
            cfg.integrator = Integrator::VelocityVerlet;
            let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
            let stats = engine.run(20);
            (engine.system, stats)
        };
        let (a, stats) = run_vv(ExchangeBackend::NvshmemFused);
        let (b, _) = run_vv(ExchangeBackend::Mpi);
        let mut max_err = 0.0f32;
        for (pa, pb) in a.positions.iter().zip(&b.positions) {
            max_err = max_err.max(sys.pbc.dist2(*pa, *pb).sqrt());
        }
        assert!(max_err < 2e-4, "vv backend deviation {max_err} nm");
        // Synchronous energies stay bounded.
        let e0 = stats.energies[0].total();
        for e in &stats.energies {
            assert!(((e.total() - e0) / e0.abs().max(1.0)).abs() < 0.3);
        }
    }

    #[test]
    fn symmetric_buffers_reused_across_segments() {
        let sys = relaxed_system(3000, 83);
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 3;
        let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
        engine.run(15); // 5 segments
        assert!(
            engine.realloc_count <= 2,
            "over-allocation should avoid reallocations: {} reallocs",
            engine.realloc_count
        );
    }

    #[test]
    fn thermostat_pulls_temperature_toward_target() {
        use crate::config::Thermostat;
        // A freshly relaxed lattice still converts potential into kinetic
        // energy while equilibrating, so compare against an uncoupled run:
        // the thermostat must hold the temperature closer to the target.
        let sys = relaxed_system(3000, 82);
        let n = sys.n_atoms() as f64;
        let temp =
            |e: &halox_md::EnergyReport| 2.0 * e.kinetic / ((3.0 * n - 3.0) * halox_md::KB as f64);
        let run = |thermostat: Option<Thermostat>| {
            let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
            cfg.nstlist = 10;
            cfg.thermostat = thermostat;
            let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
            let stats = engine.run(60);
            temp(stats.energies.last().unwrap())
        };
        let t_free = run(None);
        let t_coupled = run(Some(Thermostat {
            t_ref: 300.0,
            tau_ps: 0.005,
        }));
        assert!(
            (t_coupled - 300.0).abs() < (t_free - 300.0).abs(),
            "coupled {t_coupled} K must be closer to 300 K than free {t_free} K"
        );
        assert!(
            t_coupled < t_free,
            "thermostat must remove equilibration heat"
        );
    }

    #[test]
    fn energy_stays_bounded_across_repartitions() {
        let sys = relaxed_system(3000, 81);
        let (_, stats) = run_engine(&sys, [2, 2, 1], ExchangeBackend::NvshmemFused, 30);
        assert_eq!(stats.energies.len(), 30);
        let e0 = stats.energies[0].total();
        for (s, e) in stats.energies.iter().enumerate() {
            assert!(e.total().is_finite(), "energy diverged at step {s}");
            let rel = ((e.total() - e0) / e0.abs().max(1.0)).abs();
            assert!(rel < 0.3, "energy excursion {rel} at step {s}");
        }
        assert!(stats.ns_per_day > 0.0);
    }
}
