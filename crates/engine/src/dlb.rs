//! Deterministic dynamic load balancing (DESIGN.md §3.8).
//!
//! At every neighbour-search boundary the engine gathers one load figure
//! per PE and hands it to the [`DlbController`], which shifts the movable
//! DD cell boundaries ([`halox_dd::DdBounds`]) toward the overloaded slabs
//! with bounded, deterministic moves. Two load metrics exist:
//!
//! * **Counter** (the default when DLB is on): pair interactions in the
//!   rank's cluster/scalar list plus owned atoms, summed over the segment's
//!   force rounds. A pure function of coordinates, so serial ≡ threaded ≡
//!   procs feed the controller bit-identical inputs and the boundary
//!   trajectory — hence the MD trajectory — stays inside the bitwise
//!   contract.
//! * **Wallclock** (opt-in via `HALOX_DLB=wallclock`): per-rank segment
//!   wall time. Responds to real machine imbalance (a slow device, an
//!   oversubscribed core) that no work counter can see, but is
//!   nondeterministic by nature and therefore *excluded* from the bitwise
//!   contract.
//!
//! Boundary moves are clamped so no cell ever drops below `r_comm /
//! pinned_pulses` in any dimension: the pulse counts chosen at engine
//! construction are pinned (forwarded as `min_pulses` into
//! [`halox_dd::try_build_partition_with`]), so the signal-slot layout — and
//! with it the `WorldKey` of pooled worlds — never changes mid-run no
//! matter where the boundaries wander.

use crate::config::DlbMode;
use halox_dd::{DdBounds, DdGrid};
use halox_md::Vec3;

/// Fraction of the relative slab imbalance converted into a boundary move
/// per update (an under-relaxation factor; 1.0 would slam the boundary to
/// the balance point in one step and oscillate).
const GAIN: f64 = 0.5;
/// Hard cap on one boundary move, as a fraction of the smaller adjacent
/// cell — keeps a single noisy segment from folding a cell.
const MAX_MOVE: f32 = 0.25;
/// Safety margin over the exact `r_comm / pulses` minimum cell length, so
/// float fuzz in `ceil(r_comm / cell_len)` can never push the needed pulse
/// count past the pinned one.
const MIN_CELL_MARGIN: f32 = 1.0625;

/// Owns the movable cell boundaries and applies bounded deterministic
/// shifts from per-PE load figures. Lives on the [`crate::Engine`] for the
/// whole run (bounds are trajectory state: they are checkpointed and
/// restored on resume/rewind).
#[derive(Debug, Clone)]
pub struct DlbController {
    /// Current per-dimension fractional cell boundaries. Public: the
    /// engine reads them for every partition build and overwrites them on
    /// checkpoint restore.
    pub bounds: DdBounds,
    dims: [usize; 3],
    box_len: [f32; 3],
    r_comm: f32,
    /// Per-dimension pulse counts computed from the *uniform* decomposition
    /// at construction and held fixed for the run (see module docs).
    pinned: [usize; 3],
    /// Completed boundary updates (diagnostics).
    pub updates: usize,
}

impl DlbController {
    pub fn new(grid: &DdGrid, box_lengths: Vec3, r_comm: f32) -> Self {
        let box_len = [box_lengths.x, box_lengths.y, box_lengths.z];
        let mut pinned = [1usize; 3];
        for d in 0..3 {
            if grid.dims[d] > 1 {
                let cell = box_len[d] / grid.dims[d] as f32;
                pinned[d] = ((r_comm / cell).ceil() as usize).max(1);
            }
        }
        DlbController {
            bounds: DdBounds::uniform(grid),
            dims: grid.dims,
            box_len,
            r_comm,
            pinned,
            updates: 0,
        }
    }

    /// The pulse counts pinned at construction — passed as `min_pulses`
    /// when DLB is active so padding pulses keep the slot layout fixed
    /// while boundaries move.
    pub fn pinned_pulses(&self) -> [usize; 3] {
        self.pinned
    }

    /// `min_pulses` argument for `try_build_partition_with`: pinned counts
    /// when DLB is on, `None` (geometry decides per segment) when off.
    pub fn min_pulses(&self, mode: DlbMode) -> Option<[usize; 3]> {
        (mode != DlbMode::Off).then_some(self.pinned)
    }

    /// Smallest legal fractional cell length in dimension `d`: the pinned
    /// pulse count must stay sufficient (`cell_len >= r_comm / pulses`,
    /// with margin), and never larger than the uniform cell so a tight
    /// decomposition simply freezes instead of erroring.
    fn min_frac(&self, d: usize) -> f32 {
        let uniform = 1.0 / self.dims[d] as f32;
        (MIN_CELL_MARGIN * self.r_comm / (self.pinned[d] as f32 * self.box_len[d])).min(uniform)
    }

    /// One balancing pass from per-PE loads (indexed by DD rank). For each
    /// decomposed dimension the loads are aggregated into per-slab totals;
    /// each interior boundary then moves toward its heavier neighbour
    /// (shrinking the overloaded cell) by `GAIN` times the relative
    /// imbalance, capped at `MAX_MOVE` of the smaller adjacent cell and
    /// clamped to the minimum cell length. Fixed iteration order and plain
    /// IEEE arithmetic: identical loads produce bit-identical boundaries
    /// on every executor.
    pub fn update(&mut self, loads: &[u64]) {
        debug_assert_eq!(loads.len(), self.dims.iter().product::<usize>());
        let grid = DdGrid::new(self.dims);
        self.updates += 1;
        for d in 0..3 {
            let n = self.dims[d];
            if n < 2 {
                continue;
            }
            let mut slab = vec![0u64; n];
            for (rank, &w) in loads.iter().enumerate() {
                slab[grid.coords_of(rank)[d]] += w;
            }
            let min_frac = self.min_frac(d);
            for b in 1..n {
                let lo = slab[b - 1] as f64;
                let hi = slab[b] as f64;
                if lo + hi == 0.0 {
                    continue;
                }
                // > 0 when the lower slab is heavier: the boundary moves
                // down, shrinking it.
                let imbalance = (lo - hi) / (lo + hi);
                let len_lo = self.bounds.fracs[d][b] - self.bounds.fracs[d][b - 1];
                let len_hi = self.bounds.fracs[d][b + 1] - self.bounds.fracs[d][b];
                let scale = len_lo.min(len_hi);
                let cap = MAX_MOVE * scale;
                let delta = (-(GAIN * imbalance) as f32 * scale).clamp(-cap, cap);
                self.bounds.shift_boundary(d, b, delta, min_frac);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid4() -> DdGrid {
        DdGrid::new([4, 1, 1])
    }

    #[test]
    fn boundary_moves_toward_loaded_slab() {
        let mut c = DlbController::new(&grid4(), Vec3::splat(8.0), 0.8);
        // Slab 0 does 10x the work of the rest: its upper boundary must
        // move down, shrinking it.
        c.update(&[1000, 100, 100, 100]);
        assert!(
            c.bounds.fracs[0][1] < 0.25,
            "overloaded cell must shrink: {:?}",
            c.bounds.fracs[0]
        );
        // Balanced slabs further along barely move.
        assert!((c.bounds.fracs[0][3] - 0.75).abs() < 0.02);
        c.bounds.validate(&grid4()).expect("bounds stay valid");
    }

    #[test]
    fn updates_are_deterministic() {
        let loads = [900u64, 120, 340, 560];
        let mut a = DlbController::new(&grid4(), Vec3::splat(8.0), 0.8);
        let mut b = DlbController::new(&grid4(), Vec3::splat(8.0), 0.8);
        for _ in 0..5 {
            a.update(&loads);
            b.update(&loads);
        }
        for d in 0..3 {
            for (x, y) in a.bounds.fracs[d].iter().zip(&b.bounds.fracs[d]) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert_eq!(a.updates, 5);
    }

    #[test]
    fn min_cell_clamp_holds_under_extreme_skew() {
        // Hammer one slab with all the load for many updates: cells must
        // never shrink below r_comm / pinned_pulses (the pulse-count pin).
        let r_comm = 0.8f32;
        let box_l = 8.0f32;
        let mut c = DlbController::new(&grid4(), Vec3::splat(box_l), r_comm);
        let np = c.pinned_pulses()[0] as f32;
        for _ in 0..200 {
            c.update(&[1_000_000, 1, 1, 1]);
        }
        c.bounds.validate(&grid4()).expect("bounds stay valid");
        let min_len = c.bounds.min_cell_len(0, box_l);
        assert!(
            min_len >= r_comm / np,
            "cell {min_len} nm violates the {np}-pulse floor"
        );
    }

    #[test]
    fn pinned_pulses_match_uniform_geometry() {
        // 8 nm box, 4 cells of 2 nm, r_comm 0.8 -> 1 pulse; a thin [7,1,1]
        // split of the same box (1.14 nm cells) still 1; r_comm 2.5 on
        // 2 nm cells -> 2 pulses.
        let c = DlbController::new(&grid4(), Vec3::splat(8.0), 0.8);
        assert_eq!(c.pinned_pulses(), [1, 1, 1]);
        let c = DlbController::new(&grid4(), Vec3::splat(8.0), 2.5);
        assert_eq!(c.pinned_pulses(), [2, 1, 1]);
        assert_eq!(c.min_pulses(DlbMode::Off), None);
        assert_eq!(c.min_pulses(DlbMode::Counter), Some([2, 1, 1]));
        assert_eq!(c.min_pulses(DlbMode::Wallclock), Some([2, 1, 1]));
    }

    #[test]
    fn zero_and_uniform_loads_leave_bounds_unchanged() {
        let mut c = DlbController::new(&grid4(), Vec3::splat(8.0), 0.8);
        let before = c.bounds.clone();
        c.update(&[0, 0, 0, 0]);
        c.update(&[500, 500, 500, 500]);
        assert_eq!(c.bounds, before);
    }
}
