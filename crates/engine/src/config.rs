//! Engine configuration.

use halox_shmem::{FaultPlan, Topology, WorldBackend};
use halox_trace::Recorder;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Which functional halo-exchange backend drives the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangeBackend {
    /// Serialized pulses over two-sided messaging (GPU-aware-MPI analogue).
    Mpi,
    /// Fused GPU-initiated exchange over the PGAS runtime (NVSHMEM
    /// analogue).
    NvshmemFused,
    /// Serialized pulses with event-driven direct copies (thread-MPI
    /// analogue; single NVLink island only).
    ThreadMpi,
}

impl ExchangeBackend {
    pub fn label(&self) -> &'static str {
        match self {
            ExchangeBackend::Mpi => "MPI",
            ExchangeBackend::NvshmemFused => "NVSHMEM",
            ExchangeBackend::ThreadMpi => "tMPI",
        }
    }
}

/// How the per-PE step loops are executed.
///
/// `Threaded` is the real execution model: one OS thread per PE driving its
/// own fused-exchange + MD step loop concurrently against the shared
/// `ShmemWorld`. `Serial` is a host-serialized reference driver: a single
/// thread advances every rank phase-by-phase using the domain-decomposition
/// reference exchanges (`halox_dd::reference_*_exchange`) — no world, no
/// signals, no chaos deliveries. The two modes are required to produce
/// **bitwise-identical** trajectories (DESIGN.md §3.3); the serial driver is
/// the ground truth the concurrent protocol is checked against, and also
/// models the host-driven blocking baseline when a link delay is configured
/// (see [`EngineConfig::link_delay_us`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunMode {
    /// Single-thread reference driver (deterministic by construction).
    Serial,
    /// One OS thread per PE (the default; deterministic by protocol).
    Threaded,
}

impl RunMode {
    pub fn label(&self) -> &'static str {
        match self {
            RunMode::Serial => "serial",
            RunMode::Threaded => "threaded",
        }
    }

    /// Default mode, overridable via `HALOX_RUN_MODE=serial|threaded` — the
    /// lever CI uses to pin a whole test-suite run to one executor.
    pub fn from_env() -> Self {
        match std::env::var("HALOX_RUN_MODE") {
            Ok(v) if v.eq_ignore_ascii_case("serial") => RunMode::Serial,
            _ => RunMode::Threaded,
        }
    }
}

/// Which non-bonded force kernel evaluates the pair interactions.
///
/// `Scalar` is the original per-pair CSR loop, kept as the cross-check
/// oracle; `Cluster` is the NBNXM-style 4×4 cluster-pair SoA kernel with
/// the local/halo tile split that lets the engine compute home–home forces
/// while the coordinate halo is still in flight (DESIGN.md §3.4). Both
/// produce the same physics; per-pair terms are bitwise identical and only
/// the accumulation order differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NbKernel {
    /// Per-pair scalar loop over the flat Verlet list (oracle).
    Scalar,
    /// Cluster-pair SoA kernel with local/halo partitions (default).
    Cluster,
}

impl NbKernel {
    pub fn label(&self) -> &'static str {
        match self {
            NbKernel::Scalar => "scalar",
            NbKernel::Cluster => "cluster",
        }
    }

    pub fn parse(s: &str) -> Option<NbKernel> {
        if s.eq_ignore_ascii_case("scalar") {
            Some(NbKernel::Scalar)
        } else if s.eq_ignore_ascii_case("cluster") {
            Some(NbKernel::Cluster)
        } else {
            None
        }
    }

    /// Default kernel, overridable via `HALOX_NB_KERNEL=scalar|cluster` —
    /// the lever CI uses to pin a whole test-suite run to one kernel.
    pub fn from_env() -> Self {
        match std::env::var("HALOX_NB_KERNEL") {
            Ok(v) => NbKernel::parse(&v).unwrap_or(NbKernel::Cluster),
            _ => NbKernel::Cluster,
        }
    }
}

/// Dynamic load balancing policy (DESIGN.md §3.8).
///
/// `Counter` feeds the boundary controller a deterministic work metric
/// (pair interactions + owned atoms per segment), so DLB-on runs stay
/// inside the serial ≡ threaded ≡ procs bitwise contract. `Wallclock`
/// feeds it per-rank segment wall time — responsive to real machine skew
/// but nondeterministic, and therefore excluded from that contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DlbMode {
    /// Static decomposition: boundaries stay uniform (default).
    Off,
    /// Deterministic work-counter metric (bitwise-safe).
    Counter,
    /// Per-rank wall-clock metric (opt-in, outside the bitwise contract).
    Wallclock,
}

impl DlbMode {
    pub fn label(&self) -> &'static str {
        match self {
            DlbMode::Off => "off",
            DlbMode::Counter => "counter",
            DlbMode::Wallclock => "wallclock",
        }
    }

    pub fn parse(s: &str) -> Option<DlbMode> {
        if s.eq_ignore_ascii_case("off") {
            Some(DlbMode::Off)
        } else if s.eq_ignore_ascii_case("counter") {
            Some(DlbMode::Counter)
        } else if s.eq_ignore_ascii_case("wallclock") {
            Some(DlbMode::Wallclock)
        } else {
            None
        }
    }

    /// Default mode, overridable via `HALOX_DLB=off|counter|wallclock` —
    /// the same process-wide lever pattern as `HALOX_NB_KERNEL`.
    pub fn from_env() -> Self {
        match std::env::var("HALOX_DLB") {
            Ok(v) => DlbMode::parse(&v).unwrap_or(DlbMode::Off),
            _ => DlbMode::Off,
        }
    }
}

/// Time-stepping scheme (GROMACS `integrator = md` vs `md-vv`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Integrator {
    /// Leapfrog (GROMACS default): velocities at half steps.
    Leapfrog,
    /// Velocity Verlet: positions and velocities synchronous; needs forces
    /// both before and after the position update, i.e. one extra force
    /// computation per segment.
    VelocityVerlet,
}

/// Weak-coupling thermostat parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thermostat {
    /// Target temperature (K).
    pub t_ref: f64,
    /// Coupling time constant (ps).
    pub tau_ps: f64,
}

/// Watchdog and graceful-degradation policy (DESIGN.md §3.2).
///
/// Every signal wait in the exchange paths is bounded by `deadline`; an
/// expiry surfaces as a [`halox_core::StallReport`]-carrying error instead
/// of a hang. The runner then climbs this ladder: retry the segment up to
/// `max_retries` times (sleeping `backoff` between attempts), then downgrade
/// the run to the `fallback` transport; `repromote_after` consecutive clean
/// fallback segments put the suspect peers on probation for re-promotion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Per-wait deadline before a stall is diagnosed.
    pub deadline: Duration,
    /// Segment retries on the same transport before downgrading.
    pub max_retries: usize,
    /// Sleep between segment retries (lets transient faults clear).
    pub backoff: Duration,
    /// Consecutive clean fallback segments before quarantined peers are
    /// put on probation.
    pub repromote_after: u32,
    /// Transport to degrade to. [`ExchangeBackend::Mpi`] is the natural
    /// choice: two-sided rendezvous, no symmetric signal slots, so the
    /// fault classes that stall the fused path cannot touch it.
    pub fallback: ExchangeBackend,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            deadline: Duration::from_secs(5),
            max_retries: 1,
            backoff: Duration::from_millis(5),
            repromote_after: 2,
            fallback: ExchangeBackend::Mpi,
        }
    }
}

/// Durable checkpoint / supervised-recovery policy (DESIGN.md §3.6).
///
/// Checkpoints are written at segment boundaries — the retry/replay unit:
/// a failed segment never gathers into the engine's `System`, so the state
/// at a boundary is exactly the state an uninterrupted run had there, and
/// a resume from it is bitwise-equal by construction. Enabling this also
/// arms the last rung of the failure ladder: a segment that fails
/// *terminally* (retries and fallback exhausted, or a dead PE) rewinds to
/// the most recent checkpoint and replays with a fresh world instead of
/// surfacing the error, up to `max_recoveries` times per run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory the `ckpt-<step>.hxck` files are written to (created on
    /// first write).
    pub dir: PathBuf,
    /// Snapshot every N completed segments (min 1).
    pub every_segments: usize,
    /// On-disk checkpoints retained (older ones are pruned after each
    /// write). Keep at least 2 so a corrupt latest file still leaves a
    /// fallback.
    pub keep: usize,
    /// Rewind-and-replay attempts per `run()` call before a terminal
    /// segment failure is surfaced to the caller after all.
    pub max_recoveries: usize,
}

impl CheckpointConfig {
    pub fn in_dir(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_segments: 1,
            keep: 3,
            max_recoveries: 3,
        }
    }

    /// Env lever: `HALOX_CKPT=<dir>[:<every_segments>]` enables
    /// checkpointing for every engine in the process (the same pattern as
    /// `HALOX_BACKEND` / `HALOX_RUN_MODE`).
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("HALOX_CKPT").ok()?;
        if raw.is_empty() {
            return None;
        }
        let (dir, every) = match raw.rsplit_once(':') {
            Some((d, n)) if !d.is_empty() => match n.parse::<usize>() {
                Ok(n) => (d.to_string(), n.max(1)),
                // No numeric suffix: the whole value is the directory
                // (covers paths that legitimately contain ':').
                Err(_) => (raw.clone(), 1),
            },
            _ => (raw.clone(), 1),
        };
        Some(CheckpointConfig {
            every_segments: every,
            ..CheckpointConfig::in_dir(dir)
        })
    }
}

/// Parameters of a domain-decomposed MD run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Non-bonded cutoff (nm).
    pub cutoff: f32,
    /// Verlet buffer (nm); halo distance = cutoff + buffer.
    pub buffer: f32,
    /// Time step (ps).
    pub dt_ps: f32,
    /// Steps between neighbour-search / repartition events.
    pub nstlist: usize,
    pub backend: ExchangeBackend,
    /// Executor: threaded per-PE loops (default) or the serial reference
    /// driver. Chaos injection and transport selection only apply to
    /// `Threaded` — the serial driver performs no deliveries to fault.
    pub run_mode: RunMode,
    /// Non-bonded kernel (scalar oracle vs cluster-pair SoA).
    pub nb_kernel: NbKernel,
    /// Dynamic load balancing: off, deterministic counter metric, or
    /// opt-in wall-clock metric (`HALOX_DLB`).
    pub dlb: DlbMode,
    /// With the cluster kernel: evaluate the local (home–home) tile
    /// partition between posting the coordinate halo sends and waiting for
    /// arrivals, hiding halo latency under home-atom compute. Off, the
    /// local partition runs after the wait like everything else. Forces,
    /// energies, and trajectories are identical either way — the same
    /// tiles are folded in the same order; only wall-clock changes.
    pub nb_overlap: bool,
    /// Modeled interconnect latency per proxied (inter-node) message, in
    /// microseconds; 0 disables it. In `Threaded` mode the per-PE proxy
    /// thread pays it asynchronously (GPU-initiated one-sided semantics:
    /// latency overlaps with other PEs' work). In `Serial` mode the driver
    /// sleeps it inline per message — the host-driven blocking-send
    /// baseline of the paper. Values are unaffected either way; only
    /// wall-clock changes, which is what `halox-bench threads` measures.
    pub link_delay_us: u64,
    /// PE fabric (NVLink islands vs all-NVLink); PEs == DD ranks.
    pub topology_gpus_per_node: Option<usize>,
    /// Optional Berendsen-style weak coupling (needs a global kinetic-energy
    /// all-reduce every step — a collective the GPU-resident schedule
    /// normally avoids, which is why GROMACS couples only every nsttcouple
    /// steps; we apply it per step for simplicity).
    pub thermostat: Option<Thermostat>,
    pub integrator: Integrator,
    /// Functional-plane event recorder. When set, every segment's world is
    /// built with the recorder attached and the exchange paths emit
    /// signal/region/span events into it (see `halox-trace`); the caller
    /// drains it after the run for Chrome-trace export or protocol checking.
    pub trace: Option<Arc<Recorder>>,
    /// PGAS world backend: PEs as threads (default) or forked processes
    /// over the shared symmetric heap. Overridable via
    /// `HALOX_BACKEND=threads|procs` — the lever the `procs` CI job uses to
    /// pin a whole test-suite run to the cross-process backend.
    pub world_backend: WorldBackend,
    /// Bounded-wait and degradation policy.
    pub watchdog: WatchdogConfig,
    /// Deterministic fault injection: when set, every segment's PGAS world
    /// carries this plan's chaos engine (one engine for the whole run, so
    /// operation counters — and thus fault schedules — span segments).
    pub chaos: Option<FaultPlan>,
    /// Durable checkpoints + supervised rewind-and-replay recovery
    /// (DESIGN.md §3.6). `None` disables both; the `HALOX_CKPT` env lever
    /// provides the default.
    pub checkpoint: Option<CheckpointConfig>,
}

impl EngineConfig {
    pub fn new(backend: ExchangeBackend) -> Self {
        EngineConfig {
            cutoff: 0.7,
            buffer: 0.1,
            dt_ps: 0.0005,
            nstlist: 10,
            backend,
            run_mode: RunMode::from_env(),
            nb_kernel: NbKernel::from_env(),
            dlb: DlbMode::from_env(),
            nb_overlap: true,
            link_delay_us: 0,
            topology_gpus_per_node: None,
            thermostat: None,
            integrator: Integrator::Leapfrog,
            trace: None,
            world_backend: WorldBackend::from_env(),
            watchdog: WatchdogConfig::default(),
            chaos: None,
            checkpoint: CheckpointConfig::from_env(),
        }
    }

    pub fn r_comm(&self) -> f32 {
        self.cutoff + self.buffer
    }

    pub fn topology(&self, n_ranks: usize) -> Topology {
        match self.topology_gpus_per_node {
            Some(g) => Topology::islands(n_ranks, g),
            None => Topology::all_nvlink(n_ranks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let c = EngineConfig::new(ExchangeBackend::NvshmemFused);
        assert!((c.r_comm() - 0.8).abs() < 1e-6);
        assert!(c.topology(4).nvlink_reachable(0, 3));
        let c2 = EngineConfig {
            topology_gpus_per_node: Some(2),
            ..EngineConfig::new(ExchangeBackend::Mpi)
        };
        assert!(!c2.topology(4).nvlink_reachable(0, 3));
    }
}
