//! Per-rank non-bonded evaluation: kernel selection (scalar oracle vs
//! cluster-pair SoA), pair-list lifecycle, and the local/halo tile split
//! that backs compute–communication overlap (DESIGN.md §3.4).
//!
//! The evaluator is the single place both executors (the serial reference
//! driver and the threaded per-PE loops) get their non-bonded forces from,
//! which is what keeps them bitwise identical under either kernel:
//!
//! * exactly one `needs_rebuild` decision per force round, made *after*
//!   the coordinate halo is in place (so serial and threaded see identical
//!   inputs and consume identical fresh-skip states);
//! * with the cluster kernel, the local (home–home) partition may be
//!   evaluated optimistically during the overlap window — before halo
//!   arrivals — via [`NbEvaluator::compute_local_overlapped`]. That pass
//!   reads only home coordinates (arrivals write only the halo tail) and
//!   uses the retained list, so when the post-arrival staleness check
//!   passes, the partial is exactly what the non-overlapped order would
//!   have produced and is folded as-is; when the list turns out stale the
//!   partial is discarded and the round recomputes from the fresh list.

use crate::config::NbKernel;
use crate::devtimer::PhaseTimer;
use halox_md::cluster::{compute_nonbonded_clusters, ClusterPairList, NbPartition};
use halox_md::forces::compute_nonbonded_virial;
use halox_md::{Frame, NonbondedParams, PairList, SoaCoords, SoaForces, Vec3};

/// Owns the per-rank pair-list state for one kernel choice.
pub(crate) struct NbEvaluator {
    kernel: NbKernel,
    pairlist: Option<PairList>,
    clusters: Option<ClusterPairList>,
    /// Lane-space scratch reused across rounds (no per-step allocation).
    coords: SoaCoords,
    lane_forces: SoaForces,
    /// Local-partition `(energy, virial)` computed during the overlap
    /// window, pending the staleness verdict of this round's list.
    pending_local: Option<(f64, f64)>,
    /// Pair interactions in the list used by the most recent
    /// [`NbEvaluator::compute`] round (local + halo partitions).
    last_pairs: u64,
}

impl NbEvaluator {
    pub fn new(kernel: NbKernel) -> Self {
        NbEvaluator {
            kernel,
            pairlist: None,
            clusters: None,
            coords: SoaCoords::default(),
            lane_forces: SoaForces::default(),
            pending_local: None,
            last_pairs: 0,
        }
    }

    /// Pair interactions evaluated by the most recent
    /// [`NbEvaluator::compute`] round — the deterministic half of the DLB
    /// counter metric. The count comes from the pair *list*, so it is
    /// identical with or without the overlap window and across executors.
    pub fn last_pair_count(&self) -> u64 {
        self.last_pairs
    }

    /// True when an overlap window can do useful work: cluster kernel with
    /// a retained list (the segment's first round has nothing to reuse).
    pub fn can_overlap(&self) -> bool {
        self.kernel == NbKernel::Cluster && self.clusters.is_some()
    }

    /// Evaluate the local (home–home) tile partition using only home
    /// coordinates — legal while the coordinate halo exchange is still in
    /// flight. The partial energies and lane forces are held internally
    /// until [`NbEvaluator::compute`] validates the list for this round.
    pub fn compute_local_overlapped(
        &mut self,
        frame: &Frame,
        positions: &[Vec3],
        params: &NonbondedParams,
        timer: &mut PhaseTimer,
    ) {
        debug_assert!(self.can_overlap());
        let Some(cl) = self.clusters.as_ref() else {
            return;
        };
        let coords = &mut self.coords;
        let lanes = &mut self.lane_forces;
        lanes.reset(cl.n_lanes());
        timer.time("pack_overlap", || {
            cl.pack_coords(positions, coords, cl.home_clusters())
        });
        let res = timer.time("nb_local", || {
            compute_nonbonded_clusters(frame, coords, cl, NbPartition::Local, params, lanes)
        });
        self.pending_local = Some(res);
    }

    /// One full non-bonded force round over the complete (home + halo)
    /// coordinate array: staleness check, rebuild if needed, kernel
    /// dispatch, force accumulation into `forces` (additive). Returns
    /// `(energy, virial)`.
    #[allow(clippy::too_many_arguments)]
    pub fn compute(
        &mut self,
        frame: &Frame,
        positions: &[Vec3],
        kinds: &[halox_md::AtomKind],
        n_home: usize,
        r_list: f32,
        buffer: f32,
        rule: &dyn Fn(usize, usize) -> bool,
        params: &NonbondedParams,
        forces: &mut [Vec3],
        timer: &mut PhaseTimer,
    ) -> (f64, f64) {
        match self.kernel {
            NbKernel::Scalar => {
                let stale = self
                    .pairlist
                    .as_ref()
                    .is_none_or(|pl| pl.needs_rebuild(positions, buffer));
                if stale {
                    self.pairlist = Some(timer.time("pairlist", || {
                        PairList::build_in_frame(frame, positions, r_list, rule)
                    }));
                }
                let pl = self.pairlist.as_ref().expect("pair list just ensured");
                self.last_pairs = pl.n_pairs() as u64;
                timer.time("nb_scalar", || {
                    compute_nonbonded_virial(frame, positions, kinds, pl, params, forces)
                })
            }
            NbKernel::Cluster => {
                let stale = self
                    .clusters
                    .as_ref()
                    .is_none_or(|cl| cl.needs_rebuild(positions, buffer));
                if stale {
                    self.clusters = Some(timer.time("pairlist", || {
                        ClusterPairList::build(frame, positions, kinds, n_home, r_list, rule)
                    }));
                    // Any overlapped partial was computed against the old
                    // list: discard and recompute from scratch.
                    self.pending_local = None;
                }
                let cl = self.clusters.as_ref().expect("cluster list just ensured");
                self.last_pairs = cl.n_pairs() as u64;
                let coords = &mut self.coords;
                let lanes = &mut self.lane_forces;
                let (e_l, w_l) = match self.pending_local.take() {
                    // Overlap window already did the local partition; the
                    // lane accumulators hold its forces.
                    Some(res) => res,
                    None => {
                        lanes.reset(cl.n_lanes());
                        timer.time("pack", || {
                            cl.pack_coords(positions, coords, cl.home_clusters())
                        });
                        timer.time("nb_local", || {
                            compute_nonbonded_clusters(
                                frame,
                                coords,
                                cl,
                                NbPartition::Local,
                                params,
                                lanes,
                            )
                        })
                    }
                };
                timer.time("pack", || {
                    cl.pack_coords(positions, coords, cl.halo_clusters())
                });
                let (e_h, w_h) = timer.time("nb_halo", || {
                    compute_nonbonded_clusters(frame, coords, cl, NbPartition::Halo, params, lanes)
                });
                cl.fold_forces(lanes, forces);
                (e_l + e_h, w_l + w_h)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halox_md::pairlist::eighth_shell_rule;
    use halox_md::{GrappaBuilder, Vec3};

    /// The threaded-equivalence argument in miniature: a round evaluated
    /// with the overlap window (local partition before "arrival") is
    /// bitwise identical to the same round evaluated in one pass.
    #[test]
    fn overlapped_round_is_bitwise_identical() {
        let sys = GrappaBuilder::new(1200).seed(51).build();
        let frame = Frame::for_decomposition(&sys.pbc, [2, 1, 1]);
        let n = sys.n_atoms();
        let n_home = 900;
        let mut disp = vec![[0u8; 3]; n];
        for d in disp.iter_mut().skip(n_home) {
            *d = [1, 0, 0];
        }
        let sys_ref = &sys;
        let disp_ref = &disp;
        let rule = move |a: usize, b: usize| {
            eighth_shell_rule(disp_ref, a, b) && !sys_ref.is_excluded(a, b)
        };
        let params = NonbondedParams::new(0.6);
        let mut timer = PhaseTimer::new();

        // Round 1 on both evaluators builds the list.
        let mut plain = NbEvaluator::new(NbKernel::Cluster);
        let mut overlapped = NbEvaluator::new(NbKernel::Cluster);
        for ev in [&mut plain, &mut overlapped] {
            let mut f = vec![Vec3::ZERO; n];
            ev.compute(
                &frame,
                &sys.positions,
                &sys.kinds,
                n_home,
                0.7,
                0.1,
                &rule,
                &params,
                &mut f,
                &mut timer,
            );
        }
        assert!(overlapped.can_overlap());

        // Round 2: drift everything slightly (inside the buffer), then
        // evaluate plain vs overlap-window order.
        let moved: Vec<Vec3> = sys
            .positions
            .iter()
            .enumerate()
            .map(|(i, p)| *p + Vec3::new(0.001, -0.0005, 0.0007) * ((i % 3) as f32))
            .collect();
        let mut f_plain = vec![Vec3::ZERO; n];
        let r_plain = plain.compute(
            &frame,
            &moved,
            &sys.kinds,
            n_home,
            0.7,
            0.1,
            &rule,
            &params,
            &mut f_plain,
            &mut timer,
        );
        overlapped.compute_local_overlapped(&frame, &moved, &params, &mut timer);
        let mut f_over = vec![Vec3::ZERO; n];
        let r_over = overlapped.compute(
            &frame,
            &moved,
            &sys.kinds,
            n_home,
            0.7,
            0.1,
            &rule,
            &params,
            &mut f_over,
            &mut timer,
        );
        assert_eq!(r_plain.0.to_bits(), r_over.0.to_bits());
        assert_eq!(r_plain.1.to_bits(), r_over.1.to_bits());
        for (a, b) in f_plain.iter().zip(&f_over) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
        // Timer saw the overlap-specific phase.
        assert!(timer.total("pack_overlap") > std::time::Duration::ZERO);
        assert!(timer.total("nb_local") > std::time::Duration::ZERO);
        assert!(timer.total("nb_halo") > std::time::Duration::ZERO);
    }

    /// A stale list discards the overlapped partial instead of folding
    /// forces computed against dead tile indices.
    #[test]
    fn stale_list_discards_overlapped_partial() {
        let sys = GrappaBuilder::new(900).seed(52).build();
        let frame = Frame::for_decomposition(&sys.pbc, [2, 1, 1]);
        let n = sys.n_atoms();
        let n_home = 700;
        let all = |_: usize, _: usize| true;
        let params = NonbondedParams::new(0.6);
        let mut timer = PhaseTimer::new();
        let mut ev = NbEvaluator::new(NbKernel::Cluster);
        // Two rounds on unmoved positions: the first builds the list, the
        // second consumes the fresh-skip of `needs_rebuild` (a just-built
        // list is trusted for one step — DESIGN.md §3.4).
        for _ in 0..2 {
            let mut f = vec![Vec3::ZERO; n];
            ev.compute(
                &frame,
                &sys.positions,
                &sys.kinds,
                n_home,
                0.7,
                0.1,
                &all,
                &params,
                &mut f,
                &mut timer,
            );
        }
        // Move one atom past buffer/2 so the next round must rebuild.
        let mut moved = sys.positions.clone();
        moved[3].x += 0.2;
        ev.compute_local_overlapped(&frame, &moved, &params, &mut timer);
        let mut f1 = vec![Vec3::ZERO; n];
        let r1 = ev.compute(
            &frame, &moved, &sys.kinds, n_home, 0.7, 0.1, &all, &params, &mut f1, &mut timer,
        );
        // Oracle: a fresh evaluator with no overlap shenanigans. Its first
        // compute builds a new list from `moved` — same as the rebuild.
        let mut oracle = NbEvaluator::new(NbKernel::Cluster);
        let mut f2 = vec![Vec3::ZERO; n];
        let r2 = oracle.compute(
            &frame, &moved, &sys.kinds, n_home, 0.7, 0.1, &all, &params, &mut f2, &mut timer,
        );
        assert_eq!(r1.0.to_bits(), r2.0.to_bits());
        for (a, b) in f1.iter().zip(&f2) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
        }
    }
}
