//! Per-peer health ladder driving graceful transport degradation.
//!
//! The engine runner (see [`crate::runner`]) feeds this board from stall
//! diagnoses: every expired watchdog wait names a *suspect peer* (the rank
//! whose release would have satisfied the wait), and the board walks that
//! peer down a strike ladder. Once any peer is quarantined the runner flips
//! the run from the fused signal-driven path to the two-sided fallback
//! transport; sustained clean fallback segments walk the peer back up
//! (probation, then re-promotion to the fused path).
//!
//! ```text
//! Healthy --stall--> Suspect{1} --stall--> Quarantined{0}
//!    ^                   |                     |  clean fallback segments
//!    |  primary success  v                     v  (repromote_after)
//!    +---------------- Probation <-------------+
//!                        |  ^
//!                        |  | recover_failed (checkpoint rewind only)
//!                        v  |
//!            Failed (terminal within a trajectory attempt)
//! ```
//!
//! `Failed` is terminal as far as *in-run* rehabilitation goes: no count of
//! clean segments re-promotes a failed peer. The single exception is the
//! supervised rewind-and-replay ladder (DESIGN.md §3.6): after the engine
//! rewinds to a checkpoint and rebuilds a fresh world, the failed peer gets
//! a new process, so [`HealthBoard::recover_failed`] moves it to
//! [`PeerState::Probation`] — the replayed segment is its probation trial.

/// Strikes before a suspect peer is quarantined.
pub const QUARANTINE_STRIKES: u32 = 2;

/// Where a peer sits on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// No evidence against this peer.
    Healthy,
    /// Named as the suspect in `strikes` stall reports; retried on the
    /// primary transport.
    Suspect { strikes: u32 },
    /// Struck out: the run avoids signal-driven exchanges with this peer
    /// (in practice: the whole run degrades to the fallback transport).
    /// `clean_segments` counts consecutive successful fallback segments
    /// since quarantine.
    Quarantined { clean_segments: u32 },
    /// Served its quarantine; the next primary-transport segment decides
    /// between re-promotion (success) and permanent failure (stall).
    Probation,
    /// Stalled again while on probation. Terminal: never re-promoted.
    Failed,
}

/// Health state for every peer rank, plus transition counters for
/// [`crate::runner::RunStats`].
#[derive(Debug, Clone)]
pub struct HealthBoard {
    peers: Vec<PeerState>,
}

impl HealthBoard {
    pub fn new(n_ranks: usize) -> Self {
        HealthBoard {
            peers: vec![PeerState::Healthy; n_ranks],
        }
    }

    pub fn state(&self, peer: usize) -> PeerState {
        self.peers[peer]
    }

    /// A stall report named `peer` as the suspect: walk it down the ladder.
    pub fn record_stall(&mut self, peer: usize) {
        self.peers[peer] = match self.peers[peer] {
            PeerState::Healthy => PeerState::Suspect { strikes: 1 },
            PeerState::Suspect { strikes } if strikes + 1 >= QUARANTINE_STRIKES => {
                PeerState::Quarantined { clean_segments: 0 }
            }
            PeerState::Suspect { strikes } => PeerState::Suspect {
                strikes: strikes + 1,
            },
            // A stall while already quarantined (fallback transport also
            // implicates it) resets the rehabilitation clock.
            PeerState::Quarantined { .. } => PeerState::Quarantined { clean_segments: 0 },
            PeerState::Probation => PeerState::Failed,
            PeerState::Failed => PeerState::Failed,
        };
    }

    /// The runner decided to downgrade with these suspects: quarantine them
    /// immediately (skipping remaining strikes) so the rehabilitation clock
    /// starts now.
    pub fn quarantine(&mut self, peer: usize) {
        if !matches!(self.peers[peer], PeerState::Failed) {
            self.peers[peer] = PeerState::Quarantined { clean_segments: 0 };
        }
    }

    /// A peer's PE process died (cross-process backend): straight to
    /// [`PeerState::Failed`], skipping the strike ladder — a dead process
    /// cannot be rehabilitated within the run, and the next segment must
    /// select the fallback transport immediately.
    pub fn fail(&mut self, peer: usize) {
        self.peers[peer] = PeerState::Failed;
    }

    /// The Recovered transition: a checkpoint rewind rebuilt the world, so
    /// every [`PeerState::Failed`] peer is backed by a fresh PE again. Move
    /// them to [`PeerState::Probation`] — not `Healthy`: the replayed
    /// segment is their probation trial, and a repeat failure walks straight
    /// back to `Failed`. Returns how many peers were recovered. Only the
    /// rewind-and-replay ladder may call this; nothing inside a trajectory
    /// attempt resurrects a failed peer.
    pub fn recover_failed(&mut self) -> usize {
        let mut recovered = 0;
        for p in &mut self.peers {
            if matches!(p, PeerState::Failed) {
                *p = PeerState::Probation;
                recovered += 1;
            }
        }
        recovered
    }

    /// A fallback-transport segment completed cleanly: credit every
    /// quarantined peer; after `repromote_after` consecutive clean segments
    /// a peer graduates to probation.
    pub fn record_fallback_success(&mut self, repromote_after: u32) {
        for p in &mut self.peers {
            if let PeerState::Quarantined { clean_segments } = *p {
                *p = if clean_segments + 1 >= repromote_after {
                    PeerState::Probation
                } else {
                    PeerState::Quarantined {
                        clean_segments: clean_segments + 1,
                    }
                };
            }
        }
    }

    /// A primary-transport segment completed cleanly: peers on probation are
    /// re-promoted to healthy and lingering suspicions are forgiven.
    /// Returns how many peers were re-promoted.
    pub fn record_primary_success(&mut self) -> usize {
        let mut repromoted = 0;
        for p in &mut self.peers {
            match *p {
                PeerState::Probation => {
                    *p = PeerState::Healthy;
                    repromoted += 1;
                }
                PeerState::Suspect { .. } => *p = PeerState::Healthy,
                _ => {}
            }
        }
        repromoted
    }

    /// Should the next segment run on the fallback transport? True while any
    /// peer is quarantined or permanently failed. (Probation peers get a
    /// primary-transport segment — that *is* the probation trial.)
    pub fn needs_fallback(&self) -> bool {
        self.peers
            .iter()
            .any(|p| matches!(p, PeerState::Quarantined { .. } | PeerState::Failed))
    }

    /// Peers currently quarantined or failed (for downgrade records).
    pub fn degraded_peers(&self) -> Vec<usize> {
        self.peers
            .iter()
            .enumerate()
            .filter(|(_, p)| matches!(p, PeerState::Quarantined { .. } | PeerState::Failed))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strike_ladder_reaches_quarantine() {
        let mut h = HealthBoard::new(4);
        h.record_stall(2);
        assert_eq!(h.state(2), PeerState::Suspect { strikes: 1 });
        assert!(!h.needs_fallback());
        h.record_stall(2);
        assert_eq!(h.state(2), PeerState::Quarantined { clean_segments: 0 });
        assert!(h.needs_fallback());
        assert_eq!(h.degraded_peers(), vec![2]);
    }

    #[test]
    fn rehabilitation_walks_back_to_healthy() {
        let mut h = HealthBoard::new(2);
        h.quarantine(1);
        h.record_fallback_success(2);
        assert_eq!(h.state(1), PeerState::Quarantined { clean_segments: 1 });
        assert!(h.needs_fallback());
        h.record_fallback_success(2);
        assert_eq!(h.state(1), PeerState::Probation);
        // Probation peers get a primary trial, so no fallback needed.
        assert!(!h.needs_fallback());
        assert_eq!(h.record_primary_success(), 1);
        assert_eq!(h.state(1), PeerState::Healthy);
    }

    #[test]
    fn stall_on_probation_is_terminal() {
        let mut h = HealthBoard::new(2);
        h.quarantine(0);
        h.record_fallback_success(1);
        assert_eq!(h.state(0), PeerState::Probation);
        h.record_stall(0);
        assert_eq!(h.state(0), PeerState::Failed);
        assert!(h.needs_fallback());
        // Failed is terminal: no amount of clean segments re-promotes.
        h.record_fallback_success(1);
        h.record_fallback_success(1);
        assert_eq!(h.state(0), PeerState::Failed);
        assert_eq!(h.record_primary_success(), 0);
        assert_eq!(h.state(0), PeerState::Failed);
    }

    #[test]
    fn primary_success_forgives_single_strikes() {
        let mut h = HealthBoard::new(2);
        h.record_stall(0);
        assert_eq!(h.state(0), PeerState::Suspect { strikes: 1 });
        assert_eq!(h.record_primary_success(), 0);
        assert_eq!(h.state(0), PeerState::Healthy);
        // Forgiveness resets the ladder: two fresh strikes needed again.
        h.record_stall(0);
        assert_eq!(h.state(0), PeerState::Suspect { strikes: 1 });
    }

    #[test]
    fn dead_pe_fails_immediately_and_terminally() {
        let mut h = HealthBoard::new(3);
        h.fail(1);
        assert_eq!(h.state(1), PeerState::Failed);
        assert!(h.needs_fallback());
        assert_eq!(h.degraded_peers(), vec![1]);
        // No rehabilitation path for a dead process.
        h.record_fallback_success(1);
        h.record_fallback_success(1);
        assert_eq!(h.record_primary_success(), 0);
        assert_eq!(h.state(1), PeerState::Failed);
    }

    #[test]
    fn recover_failed_moves_dead_peers_to_probation() {
        let mut h = HealthBoard::new(3);
        h.fail(1);
        h.record_stall(2); // Suspect{1} — must NOT be touched by recovery.
        assert_eq!(h.recover_failed(), 1);
        assert_eq!(h.state(1), PeerState::Probation);
        assert_eq!(h.state(2), PeerState::Suspect { strikes: 1 });
        assert!(!h.needs_fallback());
        // Probation trial succeeds → healthy again.
        assert_eq!(h.record_primary_success(), 1);
        assert_eq!(h.state(1), PeerState::Healthy);
        // Nothing failed → recovery is a no-op.
        assert_eq!(h.recover_failed(), 0);
    }

    #[test]
    fn recovered_peer_that_fails_again_goes_terminal() {
        let mut h = HealthBoard::new(2);
        h.fail(0);
        assert_eq!(h.recover_failed(), 1);
        // The probation trial stalls: straight back to Failed.
        h.record_stall(0);
        assert_eq!(h.state(0), PeerState::Failed);
    }

    #[test]
    fn stall_during_quarantine_resets_clock() {
        let mut h = HealthBoard::new(1);
        h.quarantine(0);
        h.record_fallback_success(3);
        assert_eq!(h.state(0), PeerState::Quarantined { clean_segments: 1 });
        h.record_stall(0);
        assert_eq!(h.state(0), PeerState::Quarantined { clean_segments: 0 });
    }
}
