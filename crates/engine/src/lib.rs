//! # halox-engine — the domain-decomposed MD engine
//!
//! Runs real multi-PE molecular dynamics over the functional halo-exchange
//! backends (fused NVSHMEM-style or serialized MPI-style): one thread per DD
//! rank, eighth-shell zone-pair force computation on home+halo copies,
//! leapfrog integration of home atoms, and central repartitioning at
//! neighbour-search boundaries. Correctness is established against the
//! single-rank [`halox_md::ReferenceSimulation`].

pub mod checkpoint;
pub mod config;
pub mod devtimer;
pub mod dlb;
pub mod health;
mod nb;
pub mod runner;

pub use checkpoint::{Checkpoint, CheckpointError, ConfigFingerprint, StatsSnapshot};
pub use config::{
    CheckpointConfig, DlbMode, EngineConfig, ExchangeBackend, Integrator, NbKernel, RunMode,
    Thermostat, WatchdogConfig,
};
pub use devtimer::PhaseTimer;
pub use dlb::DlbController;
pub use health::{HealthBoard, PeerState};
pub use runner::{Downgrade, Engine, EngineError, RunStats};

// Re-exported so engine users can select the PGAS world backend, pool and
// lease worlds for [`Engine::attach_world`], and match on the decomposition
// errors surfaced through [`EngineError`].
pub use halox_dd::{DdBounds, GridError, GridOptions, PlanError};
pub use halox_shmem::{PoolStats, WorldBackend, WorldKey, WorldLease, WorldPool};
