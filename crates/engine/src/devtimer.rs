//! Wall-clock phase timing for the functional engine.
//!
//! The paper instruments kernels with the GPU `%globaltimer` register
//! (§6.3) and derives *Local work*, *Non-local work* and *Non-overlap*
//! intervals. The functional plane is host-threaded, so the analogue is a
//! per-rank phase timer collecting wall-clock durations of the step phases;
//! the simulated device-side metrics for Figs 6-8 live in
//! `halox_core::sched::metrics`.

use halox_shmem::{Wire, WireError, WireReader};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Named phase accumulator.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    acc: BTreeMap<&'static str, (Duration, u64)>,
}

impl PhaseTimer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under a phase name.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed();
        let e = self.acc.entry(phase).or_insert((Duration::ZERO, 0));
        e.0 += dt;
        e.1 += 1;
        out
    }

    /// Total time spent in a phase.
    pub fn total(&self, phase: &str) -> Duration {
        self.acc
            .get(phase)
            .map(|&(d, _)| d)
            .unwrap_or(Duration::ZERO)
    }

    /// Mean time per invocation of a phase, if any.
    pub fn mean(&self, phase: &str) -> Option<Duration> {
        self.acc
            .get(phase)
            .and_then(|&(d, n)| (n > 0).then(|| d / n as u32))
    }

    /// Iterate `(phase, total, count)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration, u64)> + '_ {
        self.acc.iter().map(|(&k, &(d, n))| (k, d, n))
    }

    /// Merge another timer into this one (cross-rank aggregation).
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (k, d, n) in other.iter() {
            let e = self.acc.entry(k).or_insert((Duration::ZERO, 0));
            e.0 += d;
            e.1 += n;
        }
    }

    /// The phase with the largest total, if any phase was timed.
    ///
    /// Regression note: report consumers used `iter().next().unwrap()`,
    /// which panics on a timer that never saw a phase (e.g. a zero-step
    /// run). Empty timers are legal; use the `Option`.
    pub fn slowest(&self) -> Option<(&'static str, Duration)> {
        self.acc
            .iter()
            .max_by_key(|(_, &(d, _))| d)
            .map(|(&k, &(d, _))| (k, d))
    }

    /// Multi-line human-readable report: one `phase total mean count` line
    /// per phase in name order. An empty timer formats as an empty report
    /// (no lines, no panic).
    pub fn report(&self) -> String {
        let mut out = String::new();
        for (k, d, n) in self.iter() {
            let mean = d / (n.max(1) as u32);
            out.push_str(&format!(
                "{k:<24} total {:>10.3?}  mean {:>10.3?}  n {n}\n",
                d, mean
            ));
        }
        out
    }
}

/// Intern pool for phase names decoded off the wire. `PhaseTimer` keys are
/// `&'static str` (phase names are compile-time literals on the encoding
/// side), so a name arriving from another process is leaked exactly once
/// and reused by every later decode — the set of phase names is small and
/// fixed, so the leak is bounded.
fn intern(name: String) -> &'static str {
    static POOL: OnceLock<Mutex<BTreeMap<String, &'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    if let Some(&s) = pool.get(&name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.clone().into_boxed_str());
    pool.insert(name, leaked);
    leaked
}

/// Wire encoding so per-rank timers can cross the process boundary of the
/// `procs` world backend (entry count, then `(name, total, count)` in name
/// order — the `BTreeMap` iteration order, so encoding is deterministic).
impl Wire for PhaseTimer {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.acc.len() as u64).encode(out);
        for (&k, &(d, n)) in &self.acc {
            k.to_string().encode(out);
            d.encode(out);
            n.encode(out);
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let len = u64::decode(r)? as usize;
        let mut acc = BTreeMap::new();
        for _ in 0..len {
            let k = String::decode(r)?;
            let d = Duration::decode(r)?;
            let n = u64::decode(r)?;
            acc.insert(intern(k), (d, n));
        }
        Ok(PhaseTimer { acc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip_preserves_phases() {
        let mut t = PhaseTimer::new();
        t.time("exchange", || ());
        t.time("forces", || ());
        t.time("forces", || ());
        let back = PhaseTimer::from_bytes(&t.to_bytes()).expect("round trip");
        let a: Vec<_> = t.iter().collect();
        let b: Vec<_> = back.iter().collect();
        assert_eq!(a, b);
        // Decoding twice interns to the same static name.
        let again = PhaseTimer::from_bytes(&t.to_bytes()).expect("round trip");
        let (k1, _, _) = back.iter().next().unwrap();
        let (k2, _, _) = again.iter().next().unwrap();
        assert!(std::ptr::eq(k1, k2) || k1 == k2);
    }

    #[test]
    fn accumulates_phases() {
        let mut t = PhaseTimer::new();
        let x = t.time("work", || 21 * 2);
        assert_eq!(x, 42);
        t.time("work", || std::thread::sleep(Duration::from_millis(1)));
        assert!(t.total("work") >= Duration::from_millis(1));
        assert_eq!(t.iter().count(), 1);
        let (_, _, n) = t.iter().next().expect("one phase was timed");
        assert_eq!(n, 2);
        assert!(t.mean("work").is_some());
        assert!(t.mean("absent").is_none());
        let (name, d) = t.slowest().expect("one phase was timed");
        assert_eq!(name, "work");
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn empty_timer_formats_as_empty_report() {
        // Regression: reporting off an untouched timer must not panic —
        // `slowest()` is None and `report()` is the empty string.
        let t = PhaseTimer::new();
        assert!(t.slowest().is_none());
        assert_eq!(t.report(), "");
        assert_eq!(t.iter().count(), 0);
        assert_eq!(t.total("anything"), Duration::ZERO);
    }

    #[test]
    fn report_lists_each_phase_once() {
        let mut t = PhaseTimer::new();
        t.time("exchange", || ());
        t.time("forces", || ());
        t.time("forces", || ());
        let rep = t.report();
        assert_eq!(rep.lines().count(), 2);
        assert!(rep.contains("exchange"));
        assert!(rep.contains("forces"));
        assert!(rep.contains("n 2"));
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PhaseTimer::new();
        a.time("p", || ());
        let mut b = PhaseTimer::new();
        b.time("p", || ());
        b.time("q", || ());
        a.merge(&b);
        let counts: Vec<_> = a.iter().map(|(k, _, n)| (k, n)).collect();
        assert_eq!(counts, vec![("p", 2), ("q", 1)]);
    }
}
