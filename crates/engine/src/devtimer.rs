//! Wall-clock phase timing for the functional engine.
//!
//! The paper instruments kernels with the GPU `%globaltimer` register
//! (§6.3) and derives *Local work*, *Non-local work* and *Non-overlap*
//! intervals. The functional plane is host-threaded, so the analogue is a
//! per-rank phase timer collecting wall-clock durations of the step phases;
//! the simulated device-side metrics for Figs 6-8 live in
//! `halox_core::sched::metrics`.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Named phase accumulator.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    acc: BTreeMap<&'static str, (Duration, u64)>,
}

impl PhaseTimer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure under a phase name.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed();
        let e = self.acc.entry(phase).or_insert((Duration::ZERO, 0));
        e.0 += dt;
        e.1 += 1;
        out
    }

    /// Total time spent in a phase.
    pub fn total(&self, phase: &str) -> Duration {
        self.acc
            .get(phase)
            .map(|&(d, _)| d)
            .unwrap_or(Duration::ZERO)
    }

    /// Mean time per invocation of a phase, if any.
    pub fn mean(&self, phase: &str) -> Option<Duration> {
        self.acc
            .get(phase)
            .and_then(|&(d, n)| (n > 0).then(|| d / n as u32))
    }

    /// Iterate `(phase, total, count)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Duration, u64)> + '_ {
        self.acc.iter().map(|(&k, &(d, n))| (k, d, n))
    }

    /// Merge another timer into this one (cross-rank aggregation).
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (k, d, n) in other.iter() {
            let e = self.acc.entry(k).or_insert((Duration::ZERO, 0));
            e.0 += d;
            e.1 += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_phases() {
        let mut t = PhaseTimer::new();
        let x = t.time("work", || 21 * 2);
        assert_eq!(x, 42);
        t.time("work", || std::thread::sleep(Duration::from_millis(1)));
        assert!(t.total("work") >= Duration::from_millis(1));
        assert_eq!(t.iter().count(), 1);
        let (_, _, n) = t.iter().next().unwrap();
        assert_eq!(n, 2);
        assert!(t.mean("work").is_some());
        assert!(t.mean("absent").is_none());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PhaseTimer::new();
        a.time("p", || ());
        let mut b = PhaseTimer::new();
        b.time("p", || ());
        b.time("q", || ());
        a.merge(&b);
        let counts: Vec<_> = a.iter().map(|(k, _, n)| (k, n)).collect();
        assert_eq!(counts, vec![("p", 2), ("q", 1)]);
    }
}
