//! Crash-consistent checkpoint/restart (DESIGN.md §3.6).
//!
//! A [`Checkpoint`] is the complete dynamic state of a run at a *segment
//! boundary*: the [`System`] (positions, velocities), the step count, the
//! full per-step energy history, cumulative recovery counters, and a
//! [`ConfigFingerprint`] that rejects resumes under a physically different
//! configuration with a typed error.
//!
//! Segment boundaries are the only sound snapshot points, and they make
//! positions + velocities a *complete* state: both integrators recompute
//! forces from coordinates at the start of every segment (velocity Verlet
//! bootstraps its force cache per segment; leapfrog state is just `x, v`),
//! and a failed segment never gathers into the engine's `System`
//! (PR 2's retry contract). A resume therefore replays the identical
//! per-segment schedule an uninterrupted run would have executed, which is
//! what makes checkpoint-kill-resume **bitwise equal** to never crashing —
//! enforced across executors and transports in
//! `tests/backend_conformance.rs`.
//!
//! ## On-disk format
//!
//! ```text
//! [magic "HXCK" 4B] [version 1B] [Wire-encoded Checkpoint body] [CRC32 4B LE]
//! ```
//!
//! The CRC32 (IEEE) covers magic + version + body. Files are written
//! atomically — tmp file, `sync_all`, rename — so a crash mid-write can
//! truncate only a tmp file, never the `ckpt-<step>.hxck` a resume will
//! read. Decoding never panics: every corruption mode (bad magic, bad
//! version, CRC mismatch, truncated or malformed body) is a typed
//! [`CheckpointError`], and [`Checkpoint::latest_valid`] skips corrupt
//! files and falls back to the previous checkpoint, counting the skips.

use crate::config::{EngineConfig, Integrator};
use halox_dd::DdBounds;
use halox_md::{EnergyReport, System};
use halox_shmem::{crc32, Wire, WireError, WireReader};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// File magic: "HXCK" (HaloX ChecKpoint).
pub const MAGIC: [u8; 4] = *b"HXCK";
/// Format version; bump on any change to the body layout.
/// v2: movable DD cell boundaries ([`DdBounds`]) joined the body and the
/// DLB mode joined the fingerprint — boundary state must survive a resume
/// for DLB-on trajectories to stay bitwise.
pub const VERSION: u8 = 2;

/// Why a checkpoint could not be read, written, or resumed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem failure (path and OS error text).
    Io(String),
    /// The file does not start with [`MAGIC`] — not a checkpoint at all.
    BadMagic([u8; 4]),
    /// Intact file from an incompatible format version.
    BadVersion(u8),
    /// The CRC32 footer does not match the file contents — torn or
    /// bit-flipped file.
    CrcMismatch { stored: u32, computed: u32 },
    /// The body failed to decode (truncated / malformed despite a
    /// matching CRC — e.g. a hand-crafted file).
    Decode(WireError),
    /// The checkpoint was taken under a different configuration; resuming
    /// would silently change the physics, so it is refused.
    Mismatch {
        field: &'static str,
        expected: String,
        found: String,
    },
    /// No readable checkpoint in the directory (`tried` files existed but
    /// all were corrupt, or the directory was empty/missing).
    NoValidCheckpoint { dir: String, tried: usize },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic(m) => {
                write!(
                    f,
                    "not a checkpoint file (magic {m:02x?}, want {MAGIC:02x?})"
                )
            }
            CheckpointError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {VERSION})"
                )
            }
            CheckpointError::CrcMismatch { stored, computed } => write!(
                f,
                "checkpoint CRC mismatch: footer {stored:#010x}, contents {computed:#010x}"
            ),
            CheckpointError::Decode(e) => write!(f, "checkpoint body: {e}"),
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint config mismatch: {field} was {found}, run wants {expected}"
            ),
            CheckpointError::NoValidCheckpoint { dir, tried } => {
                write!(f, "no valid checkpoint in {dir} ({tried} candidate files)")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The configuration a checkpoint was taken under. Resuming under a
/// different transport, kernel, integrator, time step, cutoff, thermostat,
/// topology, or PE grid would change the physics (or the bitwise
/// schedule), so [`ConfigFingerprint::check`] rejects it with a typed
/// [`CheckpointError::Mismatch`]. Float parameters are fingerprinted as
/// bits: the bitwise-resume contract tolerates no rounding slack.
///
/// Deliberately *not* fingerprinted: `run_mode` and `world_backend` (the
/// execution substrate — serial/threaded/procs are bitwise identical, so
/// cross-executor resume is legal and tested), `nb_overlap` and
/// `link_delay_us` (wall-clock-only knobs), and the watchdog/chaos policy
/// (failure handling does not alter completed segments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigFingerprint {
    /// DD grid (PE count = product).
    pub grid: (usize, usize, usize),
    pub n_atoms: usize,
    /// Primary transport label (`ExchangeBackend::label`).
    pub transport: String,
    /// Non-bonded kernel label.
    pub kernel: String,
    pub integrator: String,
    pub topology_gpus_per_node: Option<usize>,
    /// Dynamic-load-balancing mode label: a `counter`-balanced trajectory
    /// resumed with DLB off (or vice versa) would shift different
    /// boundaries and diverge, so the mode is part of the physics identity.
    pub dlb: String,
    pub nstlist: usize,
    pub dt_bits: u32,
    pub cutoff_bits: u32,
    pub buffer_bits: u32,
    /// `(t_ref, tau_ps)` as f64 bits, when a thermostat is coupled.
    pub thermostat_bits: Option<(u64, u64)>,
}

fn integrator_label(i: Integrator) -> &'static str {
    match i {
        Integrator::Leapfrog => "leapfrog",
        Integrator::VelocityVerlet => "velocity-verlet",
    }
}

impl ConfigFingerprint {
    pub fn of(cfg: &EngineConfig, grid: [usize; 3], n_atoms: usize) -> Self {
        ConfigFingerprint {
            grid: (grid[0], grid[1], grid[2]),
            n_atoms,
            transport: cfg.backend.label().to_string(),
            kernel: cfg.nb_kernel.label().to_string(),
            integrator: integrator_label(cfg.integrator).to_string(),
            topology_gpus_per_node: cfg.topology_gpus_per_node,
            dlb: cfg.dlb.label().to_string(),
            nstlist: cfg.nstlist,
            dt_bits: cfg.dt_ps.to_bits(),
            cutoff_bits: cfg.cutoff.to_bits(),
            buffer_bits: cfg.buffer.to_bits(),
            thermostat_bits: cfg
                .thermostat
                .as_ref()
                .map(|t| (t.t_ref.to_bits(), t.tau_ps.to_bits())),
        }
    }

    /// Field-by-field comparison; the first mismatch names the offending
    /// field with both values rendered.
    pub fn check(&self, expected: &ConfigFingerprint) -> Result<(), CheckpointError> {
        fn diff<T: PartialEq + std::fmt::Debug>(
            field: &'static str,
            found: &T,
            expected: &T,
        ) -> Result<(), CheckpointError> {
            if found == expected {
                Ok(())
            } else {
                Err(CheckpointError::Mismatch {
                    field,
                    expected: format!("{expected:?}"),
                    found: format!("{found:?}"),
                })
            }
        }
        diff("grid", &self.grid, &expected.grid)?;
        diff("n_atoms", &self.n_atoms, &expected.n_atoms)?;
        diff("transport", &self.transport, &expected.transport)?;
        diff("kernel", &self.kernel, &expected.kernel)?;
        diff("integrator", &self.integrator, &expected.integrator)?;
        diff(
            "topology_gpus_per_node",
            &self.topology_gpus_per_node,
            &expected.topology_gpus_per_node,
        )?;
        diff("dlb", &self.dlb, &expected.dlb)?;
        diff("nstlist", &self.nstlist, &expected.nstlist)?;
        diff("dt_ps", &self.dt_bits, &expected.dt_bits)?;
        diff("cutoff", &self.cutoff_bits, &expected.cutoff_bits)?;
        diff("buffer", &self.buffer_bits, &expected.buffer_bits)?;
        diff(
            "thermostat",
            &self.thermostat_bits,
            &expected.thermostat_bits,
        )?;
        Ok(())
    }
}

impl Wire for ConfigFingerprint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.grid.encode(out);
        self.n_atoms.encode(out);
        self.transport.encode(out);
        self.kernel.encode(out);
        self.integrator.encode(out);
        self.topology_gpus_per_node.encode(out);
        self.dlb.encode(out);
        self.nstlist.encode(out);
        self.dt_bits.encode(out);
        self.cutoff_bits.encode(out);
        self.buffer_bits.encode(out);
        self.thermostat_bits.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(ConfigFingerprint {
            grid: Wire::decode(r)?,
            n_atoms: usize::decode(r)?,
            transport: String::decode(r)?,
            kernel: String::decode(r)?,
            integrator: String::decode(r)?,
            topology_gpus_per_node: Wire::decode(r)?,
            dlb: String::decode(r)?,
            nstlist: usize::decode(r)?,
            dt_bits: u32::decode(r)?,
            cutoff_bits: u32::decode(r)?,
            buffer_bits: u32::decode(r)?,
            thermostat_bits: Wire::decode(r)?,
        })
    }
}

/// Cumulative `RunStats` counters carried across resumes, so a trajectory
/// interrupted N times still reports its total retries/recoveries. The
/// diagnostic *vectors* (downgrades, stall reports) are deliberately not
/// durable — they describe one process's lifetime, not the trajectory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub retries: usize,
    pub degraded_steps: usize,
    pub repromotions: usize,
    pub recoveries: usize,
    pub rewound_steps: usize,
    pub checkpoints_written: usize,
}

impl Wire for StatsSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.retries.encode(out);
        self.degraded_steps.encode(out);
        self.repromotions.encode(out);
        self.recoveries.encode(out);
        self.rewound_steps.encode(out);
        self.checkpoints_written.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(StatsSnapshot {
            retries: usize::decode(r)?,
            degraded_steps: usize::decode(r)?,
            repromotions: usize::decode(r)?,
            recoveries: usize::decode(r)?,
            rewound_steps: usize::decode(r)?,
            checkpoints_written: usize::decode(r)?,
        })
    }
}

/// One durable snapshot of a run at a segment boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    pub fingerprint: ConfigFingerprint,
    /// Steps completed when this snapshot was taken.
    pub step: u64,
    /// The gathered global state at `step`.
    pub system: System,
    /// Per-step energy history `[0, step)` — carried so a resumed run's
    /// final `RunStats.energies` is bitwise-equal to the uninterrupted
    /// run's (one `EnergyReport` per step, invariant:
    /// `energies.len() == step`).
    pub energies: Vec<EnergyReport>,
    /// Cumulative recovery accounting up to `step`.
    pub stats: StatsSnapshot,
    /// Movable DD cell boundaries at `step`. Trajectory state, not
    /// configuration: with DLB on the boundaries have drifted from
    /// uniform, and the next segment's partition depends on them — a
    /// resume that reset them would diverge from the uninterrupted run.
    pub bounds: DdBounds,
}

/// `DdBounds` crosses the wire as three `Vec<u32>` of f32 bit patterns —
/// bit-exact by construction, and spelled out here because the `Wire`
/// trait (halox-shmem) and `DdBounds` (halox-dd) are both foreign to this
/// crate.
fn encode_bounds(b: &DdBounds, out: &mut Vec<u8>) {
    for fr in &b.fracs {
        let bits: Vec<u32> = fr.iter().map(|f| f.to_bits()).collect();
        bits.encode(out);
    }
}

fn decode_bounds(r: &mut WireReader<'_>) -> Result<DdBounds, WireError> {
    let mut fracs: [Vec<f32>; 3] = Default::default();
    for fr in fracs.iter_mut() {
        let bits: Vec<u32> = Wire::decode(r)?;
        *fr = bits.into_iter().map(f32::from_bits).collect();
    }
    Ok(DdBounds { fracs })
}

impl Wire for Checkpoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.fingerprint.encode(out);
        self.step.encode(out);
        self.system.encode(out);
        self.energies.encode(out);
        self.stats.encode(out);
        encode_bounds(&self.bounds, out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Checkpoint {
            fingerprint: ConfigFingerprint::decode(r)?,
            step: u64::decode(r)?,
            system: System::decode(r)?,
            energies: Vec::decode(r)?,
            stats: StatsSnapshot::decode(r)?,
            bounds: decode_bounds(r)?,
        })
    }
}

impl Checkpoint {
    /// Canonical file name for a snapshot at `step`; zero-padded so
    /// lexicographic order is step order.
    pub fn file_name(step: u64) -> String {
        format!("ckpt-{step:012}.hxck")
    }

    /// Full framed file image: magic + version + body + CRC32 footer.
    pub fn file_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        self.encode(&mut out);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode a framed file image. Every corruption mode is a typed error;
    /// this must never panic on attacker-grade input.
    pub fn from_file_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let min = MAGIC.len() + 1 + 4;
        if bytes.len() < min {
            return Err(CheckpointError::Decode(WireError::Truncated {
                needed: min,
                have: bytes.len(),
            }));
        }
        let (framed, footer) = bytes.split_at(bytes.len() - 4);
        if framed[..MAGIC.len()] != MAGIC {
            let mut m = [0u8; 4];
            m.copy_from_slice(&framed[..4]);
            return Err(CheckpointError::BadMagic(m));
        }
        let mut stored = [0u8; 4];
        stored.copy_from_slice(footer);
        let stored = u32::from_le_bytes(stored);
        let computed = crc32(framed);
        // CRC before version: a flipped version byte is corruption, not a
        // format revision, and should be reported as such.
        if stored != computed {
            return Err(CheckpointError::CrcMismatch { stored, computed });
        }
        let version = framed[MAGIC.len()];
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        Checkpoint::from_bytes(&framed[MAGIC.len() + 1..]).map_err(CheckpointError::Decode)
    }

    pub fn read(path: &Path) -> Result<Self, CheckpointError> {
        let bytes =
            fs::read(path).map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Self::from_file_bytes(&bytes)
    }

    /// Write `ckpt-<step>.hxck` into `dir` atomically: tmp file in the
    /// same directory, `sync_all`, rename over the final name. A crash at
    /// any point leaves either the old file set or the new one — never a
    /// torn "latest".
    pub fn write_atomic(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        let io = |what: &Path, e: std::io::Error| {
            CheckpointError::Io(format!("{}: {e}", what.display()))
        };
        fs::create_dir_all(dir).map_err(|e| io(dir, e))?;
        let final_path = dir.join(Self::file_name(self.step));
        // Pid-qualified tmp name: concurrent writers (two soak processes
        // sharing a dir) cannot tear each other's tmp files.
        let tmp = dir.join(format!(
            ".{}.tmp.{}",
            Self::file_name(self.step),
            std::process::id()
        ));
        let bytes = self.file_bytes();
        let result = (|| {
            let mut f = fs::File::create(&tmp).map_err(|e| io(&tmp, e))?;
            f.write_all(&bytes).map_err(|e| io(&tmp, e))?;
            f.sync_all().map_err(|e| io(&tmp, e))?;
            fs::rename(&tmp, &final_path).map_err(|e| io(&final_path, e))?;
            Ok(())
        })();
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // Make the rename itself durable (best-effort: some filesystems
        // refuse directory fsync).
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(final_path)
    }

    /// Checkpoint files in `dir`, ascending by step. Unparseable names are
    /// ignored (tmp files, foreign files).
    pub fn list(dir: &Path) -> Vec<(u64, PathBuf)> {
        let Ok(entries) = fs::read_dir(dir) else {
            return Vec::new();
        };
        let mut found: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let step: u64 = name
                    .strip_prefix("ckpt-")?
                    .strip_suffix(".hxck")?
                    .parse()
                    .ok()?;
                Some((step, e.path()))
            })
            .collect();
        found.sort();
        found
    }

    /// Newest *readable* checkpoint in `dir`, skipping corrupt files
    /// (returned alongside the count of files skipped — the caller
    /// surfaces it as a warning counter, never a panic).
    pub fn latest_valid(dir: &Path) -> Result<(Checkpoint, usize), CheckpointError> {
        let mut entries = Self::list(dir);
        let tried = entries.len();
        let mut skipped = 0;
        while let Some((_, path)) = entries.pop() {
            match Self::read(&path) {
                Ok(c) => return Ok((c, skipped)),
                Err(_) => skipped += 1,
            }
        }
        Err(CheckpointError::NoValidCheckpoint {
            dir: dir.display().to_string(),
            tried,
        })
    }

    /// Remove all but the newest `keep` checkpoints (best-effort).
    pub fn prune(dir: &Path, keep: usize) {
        let entries = Self::list(dir);
        if entries.len() > keep {
            for (_, path) in &entries[..entries.len() - keep] {
                let _ = fs::remove_file(path);
            }
        }
    }

    /// Sweep orphaned atomic-write leftovers from `dir`: a writer that
    /// crashed between creating its `.ckpt-*.hxck.tmp.<pid>` file and the
    /// rename leaves the tmp behind forever ([`Checkpoint::list`] ignores
    /// it, so nothing else ever reclaims the space). Files qualified with
    /// the *current* pid are left alone — a concurrent writer thread in
    /// this process may own them mid-rename. Returns the number of files
    /// removed; missing/unreadable directories sweep nothing.
    pub fn sweep_orphan_tmp(dir: &Path) -> usize {
        let Ok(entries) = fs::read_dir(dir) else {
            return 0;
        };
        let me = std::process::id();
        let mut swept = 0;
        for e in entries.flatten() {
            let Ok(name) = e.file_name().into_string() else {
                continue;
            };
            // Shape: `.ckpt-<step>.hxck.tmp.<pid>` (see `write_atomic`).
            let Some(rest) = name.strip_prefix(".ckpt-") else {
                continue;
            };
            let Some((stem, pid)) = rest.rsplit_once('.') else {
                continue;
            };
            if !stem.ends_with(".hxck.tmp") {
                continue;
            }
            let Ok(pid) = pid.parse::<u32>() else {
                continue;
            };
            if pid == me {
                continue;
            }
            if fs::remove_file(e.path()).is_ok() {
                swept += 1;
            }
        }
        swept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ExchangeBackend, Thermostat};
    use halox_md::GrappaBuilder;

    fn test_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("halox-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample_config() -> EngineConfig {
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 5;
        cfg.thermostat = Some(Thermostat {
            t_ref: 210.0,
            tau_ps: 0.5,
        });
        cfg.checkpoint = None;
        cfg
    }

    fn sample_checkpoint() -> Checkpoint {
        let sys = GrappaBuilder::new(90).seed(3).temperature(250.0).build();
        let n = sys.n_atoms();
        // Non-uniform bounds: the round-trip must preserve shifted
        // boundaries bit-for-bit, not just the uniform default.
        let mut bounds = DdBounds::uniform(&halox_dd::DdGrid::new([2, 2, 1]));
        bounds.fracs[0][1] = 0.4375;
        bounds.fracs[1][1] = 0.53125;
        let energies: Vec<EnergyReport> = (0..7)
            .map(|i| EnergyReport {
                nonbonded: -1000.0 - i as f64,
                bonds: 10.0 + i as f64 * 0.25,
                angles: 5.5,
                kinetic: 300.0 - i as f64,
                virial: -3.25,
            })
            .collect();
        Checkpoint {
            fingerprint: ConfigFingerprint::of(&sample_config(), [2, 2, 1], n),
            step: 7,
            system: sys,
            energies,
            stats: StatsSnapshot {
                retries: 2,
                degraded_steps: 5,
                repromotions: 1,
                recoveries: 1,
                rewound_steps: 5,
                checkpoints_written: 3,
            },
            bounds,
        }
    }

    #[test]
    fn round_trip_is_bitwise() {
        let ck = sample_checkpoint();
        let back = Checkpoint::from_file_bytes(&ck.file_bytes()).expect("round trip");
        // Structural equality first…
        assert_eq!(back, ck);
        // …and explicitly bitwise on the float state, since PartialEq on
        // floats would accept -0.0 == 0.0.
        for (a, b) in back.system.positions.iter().zip(&ck.system.positions) {
            assert_eq!(
                [a.x.to_bits(), a.y.to_bits(), a.z.to_bits()],
                [b.x.to_bits(), b.y.to_bits(), b.z.to_bits()]
            );
        }
        for (a, b) in back.system.velocities.iter().zip(&ck.system.velocities) {
            assert_eq!(
                [a.x.to_bits(), a.y.to_bits(), a.z.to_bits()],
                [b.x.to_bits(), b.y.to_bits(), b.z.to_bits()]
            );
        }
        for (a, b) in back.energies.iter().zip(&ck.energies) {
            assert_eq!(a.total().to_bits(), b.total().to_bits());
        }
        for d in 0..3 {
            for (a, b) in back.bounds.fracs[d].iter().zip(&ck.bounds.fracs[d]) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn fingerprint_rejects_changed_dlb_mode() {
        use crate::config::DlbMode;
        let cfg = sample_config();
        let fp = ConfigFingerprint::of(&cfg, [2, 2, 1], 90);
        let mut other = cfg.clone();
        other.dlb = DlbMode::Counter;
        let e = fp
            .check(&ConfigFingerprint::of(&other, [2, 2, 1], 90))
            .unwrap_err();
        assert!(
            matches!(e, CheckpointError::Mismatch { field: "dlb", .. }),
            "{e}"
        );
    }

    #[test]
    fn every_file_prefix_is_a_typed_error() {
        // Property-style: decoding any strict prefix of a valid file must
        // produce a typed error, never a panic.
        let bytes = sample_checkpoint().file_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::from_file_bytes(&bytes[..cut]).is_err(),
                "prefix {cut}/{} decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn corruption_modes_are_distinguished() {
        let good = sample_checkpoint().file_bytes();

        let mut bad_magic = good.clone();
        bad_magic[1] ^= 0xFF;
        assert!(matches!(
            Checkpoint::from_file_bytes(&bad_magic),
            Err(CheckpointError::BadMagic(_))
        ));

        // A bit flip anywhere past the magic trips the CRC.
        let mut flipped = good.clone();
        let mid = good.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(matches!(
            Checkpoint::from_file_bytes(&flipped),
            Err(CheckpointError::CrcMismatch { .. })
        ));

        // An intact file from a future version: BadVersion, not CRC.
        let mut future = Vec::from(MAGIC);
        future.push(VERSION + 1);
        sample_checkpoint().encode(&mut future);
        let crc = crc32(&future);
        future.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_file_bytes(&future),
            Err(CheckpointError::BadVersion(v)) if v == VERSION + 1
        ));
    }

    #[test]
    fn fingerprint_rejects_mismatched_config_with_field_name() {
        let cfg = sample_config();
        let fp = ConfigFingerprint::of(&cfg, [2, 2, 1], 90);
        assert_eq!(fp.check(&fp.clone()), Ok(()));

        let mut other = cfg.clone();
        other.backend = ExchangeBackend::Mpi;
        let e = fp
            .check(&ConfigFingerprint::of(&other, [2, 2, 1], 90))
            .unwrap_err();
        assert!(
            matches!(
                e,
                CheckpointError::Mismatch {
                    field: "transport",
                    ..
                }
            ),
            "{e}"
        );

        let e = fp
            .check(&ConfigFingerprint::of(&cfg, [4, 1, 1], 90))
            .unwrap_err();
        assert!(
            matches!(e, CheckpointError::Mismatch { field: "grid", .. }),
            "{e}"
        );

        let mut other = cfg.clone();
        other.thermostat = None;
        let e = fp
            .check(&ConfigFingerprint::of(&other, [2, 2, 1], 90))
            .unwrap_err();
        assert!(
            matches!(
                e,
                CheckpointError::Mismatch {
                    field: "thermostat",
                    ..
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn atomic_write_then_read_and_prune() {
        let dir = test_dir("atomic");
        let mut ck = sample_checkpoint();
        for step in [5u64, 10, 15, 20] {
            ck.step = step;
            ck.write_atomic(&dir).expect("write");
        }
        // No tmp litter.
        assert!(Checkpoint::list(&dir)
            .iter()
            .all(|(_, p)| !p.to_string_lossy().contains(".tmp.")));
        assert_eq!(
            Checkpoint::list(&dir)
                .iter()
                .map(|e| e.0)
                .collect::<Vec<_>>(),
            vec![5, 10, 15, 20]
        );
        let (latest, skipped) = Checkpoint::latest_valid(&dir).expect("latest");
        assert_eq!((latest.step, skipped), (20, 0));
        Checkpoint::prune(&dir, 2);
        assert_eq!(
            Checkpoint::list(&dir)
                .iter()
                .map(|e| e.0)
                .collect::<Vec<_>>(),
            vec![15, 20]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latest_valid_skips_corrupt_files_and_counts_them() {
        let dir = test_dir("corrupt");
        let mut ck = sample_checkpoint();
        ck.step = 5;
        ck.write_atomic(&dir).expect("write 5");
        ck.step = 10;
        let newest = ck.write_atomic(&dir).expect("write 10");
        // Bit-flip the newest file on disk.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, &bytes).unwrap();
        // Plus a garbage file that parses as a checkpoint name.
        fs::write(dir.join(Checkpoint::file_name(11)), b"not a checkpoint").unwrap();

        let (ck, skipped) = Checkpoint::latest_valid(&dir).expect("falls back");
        assert_eq!(ck.step, 5);
        assert_eq!(skipped, 2);

        // All corrupt: typed NoValidCheckpoint, still no panic.
        let bad = fs::read(dir.join(Checkpoint::file_name(5))).unwrap();
        let mut torn = bad;
        torn.truncate(10);
        fs::write(dir.join(Checkpoint::file_name(5)), &torn).unwrap();
        fs::remove_file(dir.join(Checkpoint::file_name(11))).unwrap();
        fs::remove_file(&newest).unwrap();
        assert!(matches!(
            Checkpoint::latest_valid(&dir),
            Err(CheckpointError::NoValidCheckpoint { tried: 1, .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
