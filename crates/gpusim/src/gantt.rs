//! ASCII Gantt rendering of simulated timelines for terminal inspection —
//! a quick look at the Fig 1 / Fig 2 schedule anatomy without leaving the
//! shell (use the Chrome-trace export for full detail).

use crate::graph::{OpId, Resource, TaskGraph, Time, Timeline};
use std::collections::BTreeMap;

/// Render the ops of one rank in `[t0, t1)` as rows per resource.
/// `width` is the number of character columns for the time axis.
pub fn render_rank(
    graph: &TaskGraph,
    t: &Timeline,
    rank: usize,
    t0: Time,
    t1: Time,
    width: usize,
) -> String {
    assert!(t1 > t0 && width >= 10);
    let span = (t1 - t0) as f64;
    let col_of = |time: Time| -> usize {
        (((time.saturating_sub(t0)) as f64 / span) * width as f64) as usize
    };
    let row_name = |r: Resource| -> Option<String> {
        match r {
            Resource::Cpu(k) if k == rank => Some("cpu      ".into()),
            Resource::Stream(k, s) if k == rank => Some(format!("stream{s}  ")),
            Resource::Tma(k) if k == rank => Some("tma      ".into()),
            Resource::Proxy(k) if k == rank => Some("proxy    ".into()),
            Resource::CopyEngine(k) if k == rank => Some("copyeng  ".into()),
            Resource::Lane(k, _) if k == rank => Some("lanes    ".into()),
            _ => None,
        }
    };

    let mut rows: BTreeMap<String, Vec<char>> = BTreeMap::new();
    for i in 0..graph.n_ops() {
        let id = OpId(i);
        let Some(row) = row_name(graph.resource(id)) else {
            continue;
        };
        let (s, e) = (t.start(id), t.end(id));
        if e <= t0 || s >= t1 {
            continue;
        }
        let line = rows.entry(row).or_insert_with(|| vec![' '; width + 1]);
        let c0 = col_of(s.max(t0));
        let c1 = col_of(e.min(t1)).max(c0);
        // First letter of the op name marks the bar.
        let mark = graph
            .label(id)
            .rsplit(':')
            .next()
            .and_then(|n| n.chars().next())
            .unwrap_or('#');
        for c in line.iter_mut().take(c1.min(width) + 1).skip(c0) {
            *c = if *c == ' ' { mark } else { '*' };
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "rank {rank}: {:.1} us .. {:.1} us ({} cols)\n",
        t0 as f64 / 1e3,
        t1 as f64 / 1e3,
        width
    ));
    for (name, line) in rows {
        out.push_str(&name);
        out.push('|');
        out.extend(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Resource as R;

    #[test]
    fn renders_rows_for_rank_resources() {
        let mut g = TaskGraph::new();
        let a = g.add("x:0:0:launch", R::Cpu(0), 10_000);
        let k = g.add("x:0:0:kernel", R::Stream(0, 1), 40_000);
        g.dep(k, a, 0);
        let _other = g.add("x:0:1:foreign", R::Cpu(1), 99_000);
        let t = g.run();
        let s = render_rank(&g, &t, 0, 0, 50_000, 40);
        assert!(s.contains("cpu"), "{s}");
        assert!(s.contains("stream1"), "{s}");
        assert!(!s.contains("foreign"));
        // The kernel bar uses its first letter.
        assert!(s.contains('k'), "{s}");
        assert!(s.contains('l'), "{s}");
    }

    #[test]
    fn overlapping_ops_marked_with_star() {
        let mut g = TaskGraph::new();
        let _a = g.add("x:0:0:aaa", R::Lane(0, 1), 10_000);
        let _b = g.add("x:0:0:bbb", R::Lane(0, 2), 10_000);
        let t = g.run();
        let s = render_rank(&g, &t, 0, 0, 10_000, 20);
        // Both lanes fold into one "lanes" row; overlap shows as '*'.
        assert!(s.contains('*'), "{s}");
    }

    #[test]
    fn window_clips_ops() {
        let mut g = TaskGraph::new();
        let _a = g.add("x:0:0:early", R::Cpu(0), 1_000);
        let b = g.add("x:0:0:late", R::Cpu(0), 1_000);
        let t = g.run();
        // Window covering only the late op.
        let s = render_rank(&g, &t, 0, t.start(b), t.end(b), 20);
        assert!(s.contains('l'));
        assert!(!s.contains('e'), "{s}");
    }
}
