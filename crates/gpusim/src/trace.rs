//! Chrome-trace (about://tracing / Perfetto) export of simulated timelines.
//!
//! Each op becomes a complete event (`ph: "X"`); rows are the resources
//! (CPU thread, streams, TMA engine, proxy, links), grouped per rank, so the
//! exported JSON visualizes the Fig 1 / Fig 2 schedules directly.

use crate::graph::{Resource, TaskGraph, Timeline};
use serde_json::{json, Value};

fn resource_row(r: Resource) -> (u64, String) {
    match r {
        Resource::Cpu(rank) => (rank as u64, "0 cpu".into()),
        Resource::Stream(rank, s) => {
            let name = match s {
                crate::graph::streams::LOCAL => "1 stream:local",
                crate::graph::streams::NONLOCAL => "2 stream:nonlocal",
                crate::graph::streams::UPDATE => "3 stream:update",
                crate::graph::streams::PRUNE => "4 stream:prune",
                _ => "5 stream:other",
            };
            (rank as u64, name.into())
        }
        Resource::CopyEngine(rank) => (rank as u64, "6 copy-engine".into()),
        Resource::Tma(rank) => (rank as u64, "7 tma".into()),
        Resource::Proxy(rank) => (rank as u64, "8 proxy".into()),
        Resource::Lane(rank, _) => (rank as u64, "9 lanes".into()),
        Resource::Link(a, b) => (1_000_000, format!("link {a}->{b}")),
    }
}

impl TaskGraph {
    /// Serialize a computed [`Timeline`] as Chrome trace JSON. Zero-duration
    /// markers are skipped. Timestamps are microseconds.
    pub fn chrome_trace(&self, t: &Timeline) -> String {
        let mut events: Vec<Value> = Vec::with_capacity(self.n_ops());
        for i in 0..self.n_ops() {
            let id = crate::graph::OpId(i);
            if t.duration(id) == 0 {
                continue;
            }
            let (pid, tid) = resource_row(self.resource(id));
            events.push(json!({
                "name": self.label(id),
                "ph": "X",
                "ts": t.start(id) as f64 / 1000.0,
                "dur": t.duration(id) as f64 / 1000.0,
                "pid": pid,
                "tid": tid,
            }));
        }
        serde_json::to_string_pretty(&json!({ "traceEvents": events })).expect("trace json")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Resource as R;

    #[test]
    fn trace_is_valid_json_with_events() {
        let mut g = TaskGraph::new();
        let a = g.add("launch", R::Cpu(0), 3000);
        let k = g.add("kernel", R::Stream(0, 1), 50_000);
        g.dep(k, a, 0);
        let _marker = g.add("marker", R::Stream(0, 2), 0);
        let w = g.add("wire", R::Link(0, 1), 9_000);
        g.dep(w, k, 400);
        let t = g.run();
        let s = g.chrome_trace(&t);
        let v: serde_json::Value = serde_json::from_str(&s).expect("valid json");
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3, "zero-duration marker skipped");
        let kernel = events.iter().find(|e| e["name"] == "kernel").unwrap();
        assert_eq!(kernel["ts"].as_f64().unwrap(), 3.0);
        assert_eq!(kernel["dur"].as_f64().unwrap(), 50.0);
        assert_eq!(kernel["tid"], "2 stream:nonlocal");
    }
}
