//! Deterministic task-graph timing simulator.
//!
//! A step schedule is a DAG of operations, each bound to a *resource* that
//! executes its operations in submission order (FIFO): CPU threads
//! (serializing kernel-launch calls), in-order GPU streams, copy/TMA
//! engines, and interconnect links (serializing transfers that share a
//! link). Cross-resource edges carry an optional `lag` (wire latency).
//!
//! `run` computes start/end times for every op by topological relaxation —
//! exactly the semantics of an event-driven simulation of FIFO servers, but
//! deterministic and replayable. Cycles (schedule bugs) are detected and
//! reported with labels.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Simulated time in nanoseconds.
pub type Time = u64;

/// Execution resources. FIFO semantics per distinct value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// The CPU thread of a rank: kernel launches and MPI calls serialize here.
    Cpu(usize),
    /// An in-order GPU stream: (rank, stream id).
    Stream(usize, u8),
    /// A DMA copy engine of a rank (thread-MPI style D2D copies).
    CopyEngine(usize),
    /// The TMA/bulk-async engine of a rank (paper §5.1 NVLink path).
    Tma(usize),
    /// A directed network link between two *nodes* (IB rail).
    Link(usize, usize),
    /// The NVSHMEM proxy thread of a rank (IB path, §5.5).
    Proxy(usize),
    /// Unlimited concurrency: per-pulse lanes inside a fused kernel
    /// (thread-block parallelism), indexed to stay unique.
    Lane(usize, u32),
}

/// Stream ids used by the engine schedules.
pub mod streams {
    pub const LOCAL: u8 = 0;
    pub const NONLOCAL: u8 = 1;
    pub const UPDATE: u8 = 2;
    /// Dedicated low-priority prune stream (paper §5.4).
    pub const PRUNE: u8 = 3;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub usize);

#[derive(Debug, Clone)]
struct Op {
    label: String,
    resource: Resource,
    duration: Time,
    deps: Vec<(OpId, Time)>,
}

/// A schedule under construction.
#[derive(Debug, Default, Clone)]
pub struct TaskGraph {
    ops: Vec<Op>,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Add an operation; returns its id. Ops on one resource run in the
    /// order they were added.
    pub fn add(&mut self, label: impl Into<String>, resource: Resource, duration: Time) -> OpId {
        self.ops.push(Op {
            label: label.into(),
            resource,
            duration,
            deps: Vec::new(),
        });
        OpId(self.ops.len() - 1)
    }

    /// `op` cannot start before `on` finishes (plus `lag` ns).
    pub fn dep(&mut self, op: OpId, on: OpId, lag: Time) {
        assert_ne!(op, on, "self-dependency");
        self.ops[op.0].deps.push((on, lag));
    }

    pub fn deps(&mut self, op: OpId, on: &[OpId]) {
        for &d in on {
            self.dep(op, d, 0);
        }
    }

    pub fn label(&self, op: OpId) -> &str {
        &self.ops[op.0].label
    }

    pub fn resource(&self, op: OpId) -> Resource {
        self.ops[op.0].resource
    }

    /// Explicit dependencies of an op (without the implicit FIFO edge).
    pub fn deps_of(&self, op: OpId) -> &[(OpId, Time)] {
        &self.ops[op.0].deps
    }

    /// Compute the timeline. Panics with a labelled message on cycles.
    pub fn run(&self) -> Timeline {
        let n = self.ops.len();
        // Implicit FIFO edges: previous op on the same resource.
        let mut last_on: HashMap<Resource, OpId> = HashMap::new();
        let mut fifo_prev: Vec<Option<OpId>> = vec![None; n];
        for (i, op) in self.ops.iter().enumerate() {
            let id = OpId(i);
            if let Some(&prev) = last_on.get(&op.resource) {
                fifo_prev[i] = Some(prev);
            }
            last_on.insert(op.resource, id);
        }

        // Kahn topological order over explicit deps + fifo edges.
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, op) in self.ops.iter().enumerate() {
            for &(d, _) in &op.deps {
                out[d.0].push(i);
                indeg[i] += 1;
            }
            if let Some(p) = fifo_prev[i] {
                out[p.0].push(i);
                indeg[i] += 1;
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(i);
            for &j in &out[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        if order.len() != n {
            let stuck: Vec<&str> = (0..n)
                .filter(|&i| indeg[i] > 0)
                .map(|i| self.ops[i].label.as_str())
                .take(8)
                .collect();
            panic!("schedule cycle involving: {stuck:?}");
        }

        let mut start = vec![0 as Time; n];
        let mut end = vec![0 as Time; n];
        for &i in &order {
            let mut s: Time = 0;
            for &(d, lag) in &self.ops[i].deps {
                s = s.max(end[d.0] + lag);
            }
            if let Some(p) = fifo_prev[i] {
                s = s.max(end[p.0]);
            }
            start[i] = s;
            end[i] = s + self.ops[i].duration;
        }
        Timeline {
            start,
            end,
            labels: self.ops.iter().map(|o| o.label.clone()).collect(),
        }
    }
}

/// Computed start/end times.
#[derive(Debug, Clone)]
pub struct Timeline {
    start: Vec<Time>,
    end: Vec<Time>,
    labels: Vec<String>,
}

impl Timeline {
    pub fn start(&self, op: OpId) -> Time {
        self.start[op.0]
    }

    pub fn end(&self, op: OpId) -> Time {
        self.end[op.0]
    }

    pub fn duration(&self, op: OpId) -> Time {
        self.end[op.0] - self.start[op.0]
    }

    /// Latest end over all ops (makespan).
    pub fn makespan(&self) -> Time {
        self.end.iter().copied().max().unwrap_or(0)
    }

    /// `(min start, max end)` over ops whose label starts with `prefix`.
    /// None if no op matches.
    pub fn span_of_prefix(&self, prefix: &str) -> Option<(Time, Time)> {
        let mut lo = Time::MAX;
        let mut hi = 0;
        let mut any = false;
        for (i, l) in self.labels.iter().enumerate() {
            if l.starts_with(prefix) {
                lo = lo.min(self.start[i]);
                hi = hi.max(self.end[i]);
                any = true;
            }
        }
        any.then_some((lo, hi))
    }

    /// End time of the single op with this exact label (panics if absent or
    /// ambiguous labels are fine — last match wins deterministically).
    pub fn end_of_label(&self, label: &str) -> Option<Time> {
        let mut found = None;
        for (i, l) in self.labels.iter().enumerate() {
            if l == label {
                found = Some(self.end[i]);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_ops_start_at_zero() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Cpu(0), 10);
        let b = g.add("b", Resource::Cpu(1), 20);
        let t = g.run();
        assert_eq!(t.start(a), 0);
        assert_eq!(t.start(b), 0);
        assert_eq!(t.makespan(), 20);
    }

    #[test]
    fn fifo_serializes_same_resource() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Cpu(0), 10);
        let b = g.add("b", Resource::Cpu(0), 5);
        let t = g.run();
        assert_eq!(t.start(b), t.end(a));
        assert_eq!(t.end(b), 15);
    }

    #[test]
    fn deps_with_lag_model_latency() {
        let mut g = TaskGraph::new();
        let send = g.add("send", Resource::Cpu(0), 3);
        let recv = g.add("recv", Resource::Cpu(1), 2);
        g.dep(recv, send, 100);
        let t = g.run();
        assert_eq!(t.start(recv), 103);
    }

    #[test]
    fn streams_overlap_cpu() {
        let mut g = TaskGraph::new();
        let launch1 = g.add("launch1", Resource::Cpu(0), 3);
        let k1 = g.add("k1", Resource::Stream(0, 0), 50);
        g.dep(k1, launch1, 0);
        let launch2 = g.add("launch2", Resource::Cpu(0), 3);
        let k2 = g.add("k2", Resource::Stream(0, 1), 40);
        g.dep(k2, launch2, 0);
        let t = g.run();
        // CPU serializes launches; kernels overlap on different streams.
        assert_eq!(t.start(k1), 3);
        assert_eq!(t.start(k2), 6);
        assert!(t.end(k2) < t.end(k1) + 40, "kernels overlapped");
    }

    #[test]
    fn in_order_stream_chains_kernels() {
        let mut g = TaskGraph::new();
        let k1 = g.add("k1", Resource::Stream(0, 0), 50);
        let k2 = g.add("k2", Resource::Stream(0, 0), 40);
        let t = g.run();
        assert_eq!(t.start(k2), t.end(k1));
    }

    #[test]
    fn link_fifo_serializes_transfers() {
        let mut g = TaskGraph::new();
        let w1 = g.add("wire1", Resource::Link(0, 1), 30);
        let w2 = g.add("wire2", Resource::Link(0, 1), 30);
        let w3 = g.add("wire3", Resource::Link(1, 0), 30); // other direction is free
        let t = g.run();
        assert_eq!(t.start(w2), 30);
        assert_eq!(t.start(w3), 0);
        let _ = w1;
    }

    #[test]
    fn lanes_run_concurrently() {
        let mut g = TaskGraph::new();
        let a = g.add("p0", Resource::Lane(0, 0), 100);
        let b = g.add("p1", Resource::Lane(0, 1), 100);
        let t = g.run();
        assert_eq!(t.start(a), 0);
        assert_eq!(t.start(b), 0);
        assert_eq!(t.makespan(), 100);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cycles_detected() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Cpu(0), 1);
        let b = g.add("b", Resource::Cpu(1), 1);
        g.dep(a, b, 0);
        g.dep(b, a, 0);
        let _ = g.run();
    }

    #[test]
    fn span_of_prefix_aggregates() {
        let mut g = TaskGraph::new();
        let a = g.add("nl:pack", Resource::Cpu(0), 10);
        let b = g.add("nl:wire", Resource::Cpu(0), 20);
        let _c = g.add("other", Resource::Cpu(0), 5);
        g.dep(b, a, 0);
        let t = g.run();
        assert_eq!(t.span_of_prefix("nl:"), Some((0, 30)));
        assert_eq!(t.span_of_prefix("nope"), None);
    }

    #[test]
    fn diamond_dependency_takes_longest_path() {
        let mut g = TaskGraph::new();
        let a = g.add("a", Resource::Lane(0, 0), 10);
        let b = g.add("b", Resource::Lane(0, 1), 30);
        let c = g.add("c", Resource::Lane(0, 2), 20);
        let d = g.add("d", Resource::Lane(0, 3), 5);
        g.dep(b, a, 0);
        g.dep(c, a, 0);
        g.deps(d, &[b, c]);
        let t = g.run();
        assert_eq!(t.start(d), 40);
        assert_eq!(t.makespan(), 45);
    }
}
