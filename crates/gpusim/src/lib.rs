//! # halox-gpusim — discrete-event timing simulator of a GPU cluster
//!
//! The timing plane of the reproduction. Figures 3-8 of the paper are
//! wall-clock results on NVIDIA Eos / GB200 hardware; we regenerate their
//! *shape* by simulating the same step schedules on a calibrated model:
//!
//! * [`graph`] — a deterministic task-graph simulator with FIFO resources
//!   (CPU threads, in-order GPU streams, TMA/copy engines, network links,
//!   proxy threads) and latency-bearing dependency edges;
//! * [`machines`] — the paper's clusters (DGX-H100 intra-node, Eos
//!   multi-node 4 GPU/node + NDR InfiniBand, GB200 NVL72 MNNVL), with kernel
//!   cost parameters calibrated against the paper's device-side timings
//!   (§3 launch overheads, §6.3 ns/atom rates);
//! * [`costs`] — duration helpers mapping workload sizes to op durations.
//!
//! ```
//! use halox_gpusim::{Resource, TaskGraph};
//!
//! let mut g = TaskGraph::new();
//! let launch = g.add("launch", Resource::Cpu(0), 3_000);
//! let kernel = g.add("kernel", Resource::Stream(0, 0), 50_000);
//! g.dep(kernel, launch, 0);
//! let t = g.run();
//! assert_eq!(t.end(kernel), 53_000);
//! assert_eq!(g.critical_path(&t).len(), 2);
//! ```

// Index-based loops across parallel arrays are the dominant idiom in these
// kernels; clippy's iterator rewrites obscure the cross-array indexing.
#![allow(clippy::needless_range_loop)]
pub mod analysis;
pub mod costs;
pub mod gantt;
pub mod graph;
pub mod machines;
pub mod trace;

pub use analysis::CriticalOp;
pub use costs::BYTES_PER_ATOM;
pub use graph::{streams, OpId, Resource, TaskGraph, Time, Timeline};
pub use machines::MachineModel;
