//! Schedule analysis: critical-path extraction and resource utilization —
//! the tooling behind the paper's "detailed critical path and overlap
//! analysis using GPU cycle timers" (§1, §6.3), applied to simulated
//! timelines.

use crate::graph::{OpId, Resource, TaskGraph, Time, Timeline};
use std::collections::HashMap;

/// One hop of a critical path.
#[derive(Debug, Clone)]
pub struct CriticalOp {
    pub op: OpId,
    pub label: String,
    pub resource: Resource,
    pub start: Time,
    pub end: Time,
}

impl TaskGraph {
    /// The chain of operations that determines the makespan: walk backwards
    /// from the last-finishing op through whichever predecessor (explicit
    /// dependency or FIFO neighbour) bound each start time. Returned in
    /// execution order. Zero-duration hops whose predecessor binds at the
    /// same instant are kept — they often *are* the interesting latency
    /// (signals, arrivals).
    pub fn critical_path(&self, t: &Timeline) -> Vec<CriticalOp> {
        let n = self.n_ops();
        if n == 0 {
            return Vec::new();
        }
        // Rebuild the FIFO predecessor map exactly as `run` does.
        let mut last_on: HashMap<Resource, OpId> = HashMap::new();
        let mut fifo_prev: Vec<Option<OpId>> = vec![None; n];
        for i in 0..n {
            let id = OpId(i);
            let r = self.resource(id);
            if let Some(&prev) = last_on.get(&r) {
                fifo_prev[i] = Some(prev);
            }
            last_on.insert(r, id);
        }

        // Start from the op that finishes last.
        let mut cur = (0..n).map(OpId).max_by_key(|&i| t.end(i)).unwrap();
        let mut chain = Vec::new();
        loop {
            chain.push(CriticalOp {
                op: cur,
                label: self.label(cur).to_string(),
                resource: self.resource(cur),
                start: t.start(cur),
                end: t.end(cur),
            });
            if t.start(cur) == 0 {
                break;
            }
            // Find the predecessor that bound this start.
            let mut binding: Option<OpId> = None;
            for &(d, lag) in self.deps_of(cur) {
                if t.end(d) + lag == t.start(cur) {
                    binding = Some(d);
                    break;
                }
            }
            if binding.is_none() {
                if let Some(p) = fifo_prev[cur.0] {
                    if t.end(p) == t.start(cur) {
                        binding = Some(p);
                    }
                }
            }
            match binding {
                Some(b) => cur = b,
                // Start bound by nothing we track (shouldn't happen for
                // start > 0, but stay robust).
                None => break,
            }
        }
        chain.reverse();
        chain
    }

    /// Busy time per resource and its fraction of the makespan.
    pub fn utilization(&self, t: &Timeline) -> Vec<(Resource, Time, f64)> {
        let span = t.makespan().max(1);
        let mut busy: HashMap<Resource, Time> = HashMap::new();
        for i in 0..self.n_ops() {
            let id = OpId(i);
            *busy.entry(self.resource(id)).or_insert(0) += t.duration(id);
        }
        let mut out: Vec<(Resource, Time, f64)> = busy
            .into_iter()
            .map(|(r, b)| (r, b, b as f64 / span as f64))
            .collect();
        out.sort_by_key(|&(_, b, _)| std::cmp::Reverse(b));
        out
    }

    /// Total time the critical path spends per label prefix — a direct
    /// "where does the step time go" attribution.
    pub fn critical_path_breakdown(&self, t: &Timeline, prefixes: &[&str]) -> Vec<(String, Time)> {
        let chain = self.critical_path(t);
        let mut acc: Vec<(String, Time)> = prefixes.iter().map(|p| (p.to_string(), 0)).collect();
        let mut other = 0;
        for hop in &chain {
            // Label shape is "backend:step:rank:opname" — match on opname.
            let opname = hop.label.rsplit(':').next().unwrap_or(&hop.label);
            match acc.iter_mut().find(|(p, _)| opname.starts_with(p.as_str())) {
                Some((_, v)) => *v += hop.end - hop.start,
                None => other += hop.end - hop.start,
            }
        }
        acc.push(("other".to_string(), other));
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Resource as R;

    fn sample() -> (TaskGraph, Timeline) {
        let mut g = TaskGraph::new();
        let a = g.add("x:0:0:launch", R::Cpu(0), 5);
        let k1 = g.add("x:0:0:kernel1", R::Stream(0, 0), 50);
        g.dep(k1, a, 0);
        let k2 = g.add("x:0:0:kernel2", R::Stream(0, 0), 30);
        let side = g.add("x:0:0:side", R::Stream(0, 1), 10);
        g.dep(side, a, 0);
        let t = g.run();
        let _ = k2;
        (g, t)
    }

    #[test]
    fn critical_path_follows_binding_chain() {
        let (g, t) = sample();
        let chain = g.critical_path(&t);
        let labels: Vec<&str> = chain.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            vec!["x:0:0:launch", "x:0:0:kernel1", "x:0:0:kernel2"]
        );
        // Contiguous in time.
        for w in chain.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        assert_eq!(chain.last().unwrap().end, t.makespan());
    }

    #[test]
    fn utilization_accounts_busy_time() {
        let (g, t) = sample();
        let u = g.utilization(&t);
        let stream0 = u.iter().find(|(r, _, _)| *r == R::Stream(0, 0)).unwrap();
        assert_eq!(stream0.1, 80);
        let frac = stream0.2;
        assert!((frac - 80.0 / 85.0).abs() < 1e-9);
        let cpu = u.iter().find(|(r, _, _)| *r == R::Cpu(0)).unwrap();
        assert_eq!(cpu.1, 5);
    }

    #[test]
    fn breakdown_attributes_by_opname() {
        let (g, t) = sample();
        let b = g.critical_path_breakdown(&t, &["kernel", "launch"]);
        assert_eq!(b[0], ("kernel".to_string(), 80));
        assert_eq!(b[1], ("launch".to_string(), 5));
        assert_eq!(b[2], ("other".to_string(), 0));
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TaskGraph::new();
        let t = g.run();
        assert!(g.critical_path(&t).is_empty());
        assert!(g.utilization(&t).is_empty());
    }
}
