//! Kernel- and transfer-duration helpers on top of [`MachineModel`].

use crate::machines::MachineModel;

/// Bytes on the wire per atom of coordinate/force payload (float3).
pub const BYTES_PER_ATOM: f64 = 12.0;

impl MachineModel {
    /// Local non-bonded kernel duration for `n` local atoms, ns.
    pub fn nb_local_ns(&self, n: f64) -> u64 {
        (self.kernel_fixed_ns as f64 + n * self.nb_ns_per_atom).round() as u64
    }

    /// Non-local non-bonded kernel duration for `halo` received atoms, ns:
    /// piecewise-linear interpolation over the calibration table.
    pub fn nb_nonlocal_ns(&self, halo: f64) -> u64 {
        let t = &self.nb_nonlocal_table;
        assert!(t.len() >= 2, "calibration table needs >= 2 points");
        let h = halo.max(0.0);
        // Find the surrounding segment; extrapolate with the last slope.
        let (lo, hi) = if h >= t[t.len() - 1].0 {
            (t[t.len() - 2], t[t.len() - 1])
        } else {
            let idx = t
                .iter()
                .position(|&(x, _)| x >= h)
                .unwrap_or(t.len() - 1)
                .max(1);
            (t[idx - 1], t[idx])
        };
        let slope = (hi.1 - lo.1) / (hi.0 - lo.0).max(1e-12);
        (lo.1 + slope * (h - lo.0)).round() as u64
    }

    /// Bonded-force kernel duration (small fraction of non-bonded), ns.
    pub fn bonded_ns(&self, n: f64) -> u64 {
        (self.kernel_fixed_ns as f64 * 0.3 + n * 0.04).round() as u64
    }

    /// Pack or unpack work for `n` atoms, ns (kernel-fixed cost added by the
    /// caller once per kernel, since fused kernels amortize it).
    pub fn pack_work_ns(&self, n: f64) -> u64 {
        (n * self.pack_ns_per_atom).round() as u64
    }

    /// Integration/reduction/clear work per step, ns.
    pub fn other_ns(&self, n: f64) -> u64 {
        (self.other_fixed_ns as f64 + n * self.other_ns_per_atom).round() as u64
    }

    /// Rolling-prune kernel duration, ns.
    pub fn prune_ns(&self, n: f64) -> u64 {
        (self.kernel_fixed_ns as f64 + n * self.prune_ns_per_atom).round() as u64
    }

    /// Coordinate/force payload size for `n` atoms, bytes.
    pub fn payload_bytes(&self, n: f64) -> f64 {
        n * BYTES_PER_ATOM
    }

    /// SM-interference multiplier applied to co-resident compute kernels in
    /// the NVSHMEM schedules, given the number of decomposed dimensions.
    pub fn sm_slowdown(&self, n_comm_dims: usize) -> f64 {
        1.0 + self.sm_interference_per_dim * n_comm_dims as f64
    }

    /// Proxy service time for one message, ns (scaled by the §5.5
    /// contention ablation knob).
    pub fn proxy_service_ns(&self) -> u64 {
        (self.proxy_overhead_ns as f64 * self.proxy_contention).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_monotone_in_size() {
        let m = MachineModel::dgx_h100();
        assert!(m.nb_local_ns(90_000.0) > m.nb_local_ns(11_250.0));
        assert!(m.nb_nonlocal_ns(20_000.0) > m.nb_nonlocal_ns(5_000.0));
        assert!(m.pack_work_ns(10_000.0) > m.pack_work_ns(1_000.0));
    }

    #[test]
    fn sm_slowdown_grows_with_dims() {
        let m = MachineModel::dgx_h100();
        assert!(m.sm_slowdown(0) == 1.0);
        assert!(m.sm_slowdown(3) > m.sm_slowdown(1));
        // Paper Fig 8: ~10% at 2D on 151 us local work.
        assert!(m.sm_slowdown(3) < 1.15);
    }

    #[test]
    fn proxy_contention_scales_service() {
        let mut m = MachineModel::eos();
        let base = m.proxy_service_ns();
        m.proxy_contention = 50.0;
        assert_eq!(m.proxy_service_ns(), base * 50);
    }

    #[test]
    fn payload_is_float3() {
        let m = MachineModel::eos();
        assert_eq!(m.payload_bytes(1000.0), 12_000.0);
    }
}
