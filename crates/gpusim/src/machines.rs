//! Machine models: the clusters of the paper's evaluation, reduced to the
//! published topology/latency/bandwidth figures plus kernel-cost parameters
//! calibrated from the paper's own device-side timing numbers (§3, §6.3).

use serde::{Deserialize, Serialize};

/// Hardware + software cost model of one cluster configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineModel {
    pub name: String,
    /// GPUs used per node (paper uses 4 of 8 on Eos multi-node runs).
    pub gpus_per_node: usize,
    /// Whether NVLink spans nodes (GB200 NVL72 MNNVL).
    pub multi_node_nvlink: bool,

    // --- Interconnect ---
    /// Effective NVLink per-GPU bandwidth, bytes/ns (== GB/s / 1e0).
    pub nvlink_gbps: f64,
    /// NVLink one-way latency, ns.
    pub nvlink_latency_ns: u64,
    /// Effective per-rank InfiniBand bandwidth, bytes/ns.
    pub ib_gbps: f64,
    /// IB one-way latency incl. NIC, ns (proxy cost added separately).
    pub ib_latency_ns: u64,

    // --- Host-side overheads (paper §3) ---
    /// Kernel launch API call incl. associated event management, ns
    /// ("2-10 us" launches + "<1 us" event calls).
    pub kernel_launch_ns: u64,
    /// Event record/wait API call, ns ("<1 us").
    pub event_api_ns: u64,
    /// CPU-GPU synchronization (stream/event sync entry+exit), ns.
    pub cpu_gpu_sync_ns: u64,
    /// CPU-side cost of posting an MPI operation, ns.
    pub mpi_overhead_ns: u64,
    /// Remaining per-step CPU work (event management, clears, misc kernel
    /// launches) not modelled individually, ns. Drives the CPU-bound regime
    /// the paper describes for small systems (SS3: >50% of wall-time).
    pub misc_cpu_ns: u64,
    /// NVSHMEM proxy handling per message, ns (IB path).
    pub proxy_overhead_ns: u64,
    /// Multiplier on proxy service time (§5.5 pinning ablation; 1.0 = free
    /// core, large values = contended core).
    pub proxy_contention: f64,

    // --- Kernel cost model (calibrated on Fig 6: H100) ---
    /// Fixed cost of a non-bonded kernel (scheduling, tail), ns.
    pub kernel_fixed_ns: u64,
    /// Fixed cost of a pack/unpack kernel, ns.
    pub pack_kernel_fixed_ns: u64,
    /// Local non-bonded: ns per local atom.
    pub nb_ns_per_atom: f64,
    /// Non-local non-bonded kernel cost: piecewise-linear in halo atoms,
    /// calibrated on the paper's Fig 6 non-local spans. The S-shape (flat at
    /// small halos, steep once the zone pair lists saturate the SMs) does
    /// not fit a power law; points are `(halo_atoms, ns)`, linearly
    /// interpolated and extrapolated with the last segment's slope.
    pub nb_nonlocal_table: Vec<(f64, f64)>,
    /// Pack/unpack kernels: ns per packed atom.
    pub pack_ns_per_atom: f64,
    /// Per-step "other tasks" (integration, reduction, clears): fixed ns
    /// (paper: 30-40 us regardless of DD) plus per-atom term.
    pub other_fixed_ns: u64,
    pub other_ns_per_atom: f64,
    /// Rolling prune kernel: ns per local atom (runs on its own stream).
    pub prune_ns_per_atom: f64,
    /// Fixed cost of one pulse's processing inside a fused kernel (block
    /// scheduling, signal-poll granularity), ns.
    pub pulse_fixed_ns: u64,
    /// Cost of launching a captured CUDA graph for a whole step (paper
    /// SS5.3: NVSHMEM communication remains graph-capturable), ns.
    pub graph_launch_ns: u64,
    /// Fraction of co-resident compute slowed by NVSHMEM SM sharing, per
    /// communication dimension (paper §6.2-6.3: small, grows with pulses).
    pub sm_interference_per_dim: f64,
}

impl MachineModel {
    /// NVIDIA Eos DGX-H100 node (intra-node runs, Fig 3/6): NVLink 4 +
    /// NVSwitch, 8 H100 per node.
    pub fn dgx_h100() -> Self {
        MachineModel {
            name: "DGX-H100".into(),
            gpus_per_node: 8,
            multi_node_nvlink: false,
            nvlink_gbps: 450.0,
            nvlink_latency_ns: 400,
            ib_gbps: 50.0,
            ib_latency_ns: 8_000,
            kernel_launch_ns: 2_500,
            event_api_ns: 500,
            cpu_gpu_sync_ns: 600,
            mpi_overhead_ns: 1_200,
            misc_cpu_ns: 120_000,
            proxy_overhead_ns: 2_500,
            proxy_contention: 1.0,
            kernel_fixed_ns: 5_000,
            pack_kernel_fixed_ns: 800,
            nb_ns_per_atom: 1.63,
            nb_nonlocal_table: vec![
                (0.0, 15_000.0),
                (6_162.0, 52_000.0),
                (15_527.0, 82_000.0),
                (24_675.0, 140_000.0),
            ],
            pack_ns_per_atom: 0.04,
            other_fixed_ns: 30_000,
            other_ns_per_atom: 0.75,
            prune_ns_per_atom: 0.30,
            pulse_fixed_ns: 2_000,
            graph_launch_ns: 5_000,
            sm_interference_per_dim: 0.033,
        }
    }

    /// Eos multi-node configuration (Fig 5/7/8): 4 H100 per node over
    /// multi-rail NDR400 InfiniBand.
    pub fn eos() -> Self {
        MachineModel {
            name: "Eos (4xH100/node + NDR400)".into(),
            gpus_per_node: 4,
            ..Self::dgx_h100()
        }
    }

    /// GB200 NVL72 in the paper's 36x2 configuration: 4 GPUs/node,
    /// multi-node NVLink (Fig 4).
    pub fn gb200_nvl72() -> Self {
        MachineModel {
            name: "GB200 NVL72 (MNNVL 36x2)".into(),
            gpus_per_node: 4,
            multi_node_nvlink: true,
            nvlink_gbps: 900.0,
            nvlink_latency_ns: 900, // cross-node NVLink hops
            // Blackwell B200 + Grace: roughly 1.7x H100 kernel rates.
            nb_ns_per_atom: 0.95,
            other_ns_per_atom: 0.60,
            nb_nonlocal_table: Self::dgx_h100()
                .nb_nonlocal_table
                .into_iter()
                .map(|(h, ns)| (h, ns * 0.8))
                .collect(),
            ..Self::dgx_h100()
        }
    }

    /// DGX-A100 node (previous generation, for what-if studies): NVLink 3,
    /// HDR InfiniBand, roughly half the H100's kernel throughput.
    pub fn dgx_a100() -> Self {
        MachineModel {
            name: "DGX-A100".into(),
            nvlink_gbps: 300.0,
            nvlink_latency_ns: 500,
            ib_gbps: 25.0,
            ib_latency_ns: 9_000,
            nb_ns_per_atom: 3.1,
            nb_nonlocal_table: Self::dgx_h100()
                .nb_nonlocal_table
                .into_iter()
                .map(|(h, ns)| (h, ns * 1.9))
                .collect(),
            ..Self::dgx_h100()
        }
    }

    // --- Chainable overrides for custom what-if machines. ---

    pub fn with_name(mut self, name: &str) -> Self {
        self.name = name.into();
        self
    }

    pub fn with_gpus_per_node(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.gpus_per_node = n;
        self
    }

    pub fn with_nvlink(mut self, gbps: f64, latency_ns: u64) -> Self {
        self.nvlink_gbps = gbps;
        self.nvlink_latency_ns = latency_ns;
        self
    }

    pub fn with_ib(mut self, gbps: f64, latency_ns: u64) -> Self {
        self.ib_gbps = gbps;
        self.ib_latency_ns = latency_ns;
        self
    }

    pub fn with_proxy_contention(mut self, factor: f64) -> Self {
        self.proxy_contention = factor;
        self
    }

    /// True if ranks `a` and `b` (global ids) share an NVLink domain.
    pub fn nvlink_reachable(&self, a: usize, b: usize) -> bool {
        self.multi_node_nvlink || a / self.gpus_per_node == b / self.gpus_per_node
    }

    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// One-way latency between two ranks, ns.
    pub fn latency_ns(&self, a: usize, b: usize) -> u64 {
        if self.nvlink_reachable(a, b) {
            self.nvlink_latency_ns
        } else {
            self.ib_latency_ns
        }
    }

    /// Wire time for `bytes` between two ranks, ns.
    pub fn wire_ns(&self, a: usize, b: usize, bytes: f64) -> u64 {
        let bw = if self.nvlink_reachable(a, b) {
            self.nvlink_gbps
        } else {
            self.ib_gbps
        };
        (bytes / bw).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dgx_reachability_is_intra_node() {
        let m = MachineModel::dgx_h100();
        assert!(m.nvlink_reachable(0, 7));
        assert!(!m.nvlink_reachable(7, 8));
        assert_eq!(m.node_of(9), 1);
    }

    #[test]
    fn mnnvl_reaches_everywhere() {
        let m = MachineModel::gb200_nvl72();
        assert!(m.nvlink_reachable(0, 71));
    }

    #[test]
    fn eos_uses_four_gpus_per_node() {
        let m = MachineModel::eos();
        assert!(m.nvlink_reachable(0, 3));
        assert!(!m.nvlink_reachable(3, 4));
    }

    #[test]
    fn wire_time_scales_with_bytes_and_transport() {
        let m = MachineModel::eos();
        let nvl = m.wire_ns(0, 1, 450_000.0);
        let ib = m.wire_ns(0, 4, 450_000.0);
        assert_eq!(nvl, 1_000); // 450 KB at 450 GB/s = 1 us
        assert_eq!(ib, 9_000); // 450 KB at 50 GB/s = 9 us
        assert!(m.latency_ns(0, 4) > m.latency_ns(0, 1));
    }

    #[test]
    fn nonlocal_nb_table_matches_paper_fig6() {
        let m = MachineModel::dgx_h100();
        assert_eq!(m.nb_nonlocal_ns(6_162.0), 52_000);
        assert_eq!(m.nb_nonlocal_ns(24_675.0), 140_000);
        // Interpolation between points, extrapolation beyond.
        let mid = m.nb_nonlocal_ns(10_000.0);
        assert!(mid > 52_000 && mid < 82_000, "{mid}");
        let big = m.nb_nonlocal_ns(50_000.0);
        assert!(big > 140_000, "{big}");
    }

    #[test]
    fn a100_is_slower_than_h100() {
        let a = MachineModel::dgx_a100();
        let h = MachineModel::dgx_h100();
        assert!(a.nb_local_ns(90_000.0) > h.nb_local_ns(90_000.0));
        assert!(a.nb_nonlocal_ns(10_000.0) > h.nb_nonlocal_ns(10_000.0));
        assert!(a.wire_ns(0, 1, 1e6) > h.wire_ns(0, 1, 1e6));
    }

    #[test]
    fn builder_overrides_compose() {
        let m = MachineModel::eos()
            .with_name("custom")
            .with_gpus_per_node(2)
            .with_nvlink(600.0, 300)
            .with_ib(100.0, 5_000)
            .with_proxy_contention(2.0);
        assert_eq!(m.name, "custom");
        assert!(m.nvlink_reachable(0, 1));
        assert!(!m.nvlink_reachable(1, 2));
        assert_eq!(m.wire_ns(0, 1, 600.0), 1);
        assert_eq!(m.proxy_service_ns(), 5_000);
    }

    #[test]
    fn local_nb_calibration_matches_paper_fig6() {
        // Paper: 11.25k atoms/GPU -> ~22 us; 90k -> ~152 us local work.
        let m = MachineModel::dgx_h100();
        let t11k = m.kernel_fixed_ns as f64 + 11_250.0 * m.nb_ns_per_atom;
        let t90k = m.kernel_fixed_ns as f64 + 90_000.0 * m.nb_ns_per_atom;
        assert!((t11k - 22_000.0).abs() < 3_000.0, "{t11k}");
        assert!((t90k - 152_000.0).abs() < 8_000.0, "{t90k}");
    }
}
