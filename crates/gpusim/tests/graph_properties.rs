//! Property tests of the discrete-event simulator: for random DAG schedules
//! the computed timeline must respect every dependency, keep FIFO resources
//! exclusive and in submission order, and produce a contiguous critical
//! path ending at the makespan.

use halox_gpusim::{OpId, Resource, TaskGraph};
use proptest::prelude::*;

/// A random schedule description: op durations, resource picks, and
/// backward-only dependency edges (guaranteeing a DAG).
#[derive(Debug, Clone)]
struct RandomSchedule {
    durations: Vec<u64>,
    resources: Vec<u8>,
    deps: Vec<(usize, usize, u64)>, // (op, earlier op, lag)
}

fn random_schedule() -> impl Strategy<Value = RandomSchedule> {
    (2usize..40).prop_flat_map(|n| {
        let durations = proptest::collection::vec(0u64..10_000, n);
        let resources = proptest::collection::vec(0u8..6, n);
        let deps = proptest::collection::vec((1usize..n, 0usize..n, 0u64..2_000), 0..3 * n);
        (durations, resources, deps).prop_map(|(durations, resources, deps)| RandomSchedule {
            durations,
            resources,
            deps,
        })
    })
}

fn build(rs: &RandomSchedule) -> (TaskGraph, Vec<OpId>) {
    let mut g = TaskGraph::new();
    let resource_of = |k: u8| -> Resource {
        match k {
            0 => Resource::Cpu(0),
            1 => Resource::Cpu(1),
            2 => Resource::Stream(0, 0),
            3 => Resource::Stream(0, 1),
            4 => Resource::Tma(0),
            _ => Resource::Link(0, 1),
        }
    };
    let ids: Vec<OpId> = rs
        .durations
        .iter()
        .zip(&rs.resources)
        .enumerate()
        .map(|(i, (&d, &r))| g.add(format!("op{i}"), resource_of(r), d))
        .collect();
    for &(op, on, lag) in &rs.deps {
        // Backward edges only: on < op keeps it a DAG.
        let on = on % op;
        g.dep(ids[op], ids[on], lag);
    }
    (g, ids)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn dependencies_and_fifo_respected(rs in random_schedule()) {
        let (g, ids) = build(&rs);
        let t = g.run();
        // Every explicit dependency respected with its lag.
        for &(op, on, lag) in &rs.deps {
            let on = on % op;
            prop_assert!(t.start(ids[op]) >= t.end(ids[on]) + lag);
        }
        // Ops sharing a resource: non-overlapping, in submission order.
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if rs.resources[i] == rs.resources[j] {
                    prop_assert!(t.start(ids[j]) >= t.end(ids[i]),
                        "FIFO violated between op{i} and op{j}");
                }
            }
        }
        // Durations preserved.
        for (i, &d) in rs.durations.iter().enumerate() {
            prop_assert_eq!(t.duration(ids[i]), d);
        }
    }

    #[test]
    fn critical_path_is_contiguous_and_ends_at_makespan(rs in random_schedule()) {
        let (g, _) = build(&rs);
        let t = g.run();
        let chain = g.critical_path(&t);
        prop_assert!(!chain.is_empty());
        prop_assert_eq!(chain.last().unwrap().end, t.makespan());
        prop_assert_eq!(chain.first().unwrap().start, 0);
        for w in chain.windows(2) {
            // Each hop starts no earlier than its binder finished (lag >= 0
            // may leave a gap only when a dep lag binds; the walk only
            // follows exact binders, so starts match ends exactly or with
            // the binding lag).
            prop_assert!(w[1].start >= w[0].end);
        }
    }

    #[test]
    fn utilization_sums_to_total_busy_time(rs in random_schedule()) {
        let (g, ids) = build(&rs);
        let t = g.run();
        let total: u64 = ids.iter().map(|&i| t.duration(i)).sum();
        let from_util: u64 = g.utilization(&t).iter().map(|&(_, b, _)| b).sum();
        prop_assert_eq!(total, from_util);
    }
}
