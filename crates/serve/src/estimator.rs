//! Admission estimation: predicted step-time per topology from the
//! `gpusim` cost models.
//!
//! The scheduler needs a cost signal *before* a job runs — to reject work
//! that would exceed the service's latency budget and to accrue fair-share
//! virtual time in proportion to the service a slice actually represents.
//! Rather than invent a second cost model, this reuses the calibrated
//! [`MachineModel`] kernel/link costs the timing plane validates against
//! the paper's figures.

use halox_gpusim::MachineModel;
use halox_md::System;

/// Predicts per-step wall time for a (system, grid) pairing on a machine.
#[derive(Debug, Clone)]
pub struct AdmissionEstimator {
    machine: MachineModel,
}

/// What the estimator promises about one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    pub n_ranks: usize,
    /// Predicted wall time of one MD step on this topology, ns.
    pub step_ns: u64,
    /// Predicted whole-job run time, ms.
    pub total_ms: f64,
}

impl AdmissionEstimator {
    pub fn new(machine: MachineModel) -> Self {
        AdmissionEstimator { machine }
    }

    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// Predict one rank's step time for `system` decomposed over `grid`
    /// with halo radius `r_comm`, and the whole-job total over `steps`.
    ///
    /// The halo population is estimated geometrically: each decomposed
    /// dimension's cell is dilated by `2 * r_comm`, and the volume excess
    /// over the home cell — times the local atom density — is the halo
    /// atom count feeding the non-local kernel and wire-payload costs.
    pub fn predict(
        &self,
        system: &System,
        grid: [usize; 3],
        r_comm: f32,
        steps: usize,
    ) -> Prediction {
        let n_ranks = grid.iter().product::<usize>().max(1);
        let n_local = system.n_atoms() as f64 / n_ranks as f64;
        let lengths = system.pbc.lengths();
        let box_dims = [lengths.x as f64, lengths.y as f64, lengths.z as f64];
        let r = r_comm as f64;
        let mut cell_vol = 1.0;
        let mut dilated_vol = 1.0;
        let mut comm_dims = 0;
        for d in 0..3 {
            let cell = box_dims[d] / grid[d] as f64;
            cell_vol *= cell;
            if grid[d] > 1 {
                dilated_vol *= cell + 2.0 * r;
                comm_dims += 1;
            } else {
                dilated_vol *= cell;
            }
        }
        let halo = n_local * (dilated_vol / cell_vol - 1.0).max(0.0);
        let m = &self.machine;
        let compute_ns = (m.nb_local_ns(n_local)
            + m.nb_nonlocal_ns(halo)
            + m.bonded_ns(n_local)
            + m.pack_work_ns(halo)
            + m.other_ns(n_local)) as f64;
        // Coordinate + force halos each cross the slowest link the
        // decomposition touches once per step (Gbit/s == bits/ns).
        let gbps = if n_ranks > m.gpus_per_node && !m.multi_node_nvlink {
            m.ib_gbps
        } else {
            m.nvlink_gbps
        };
        let wire_ns = if comm_dims > 0 {
            2.0 * m.payload_bytes(halo) * 8.0 / gbps + m.proxy_service_ns() as f64
        } else {
            0.0
        };
        let step_ns = (compute_ns * m.sm_slowdown(comm_dims) + wire_ns).round() as u64;
        Prediction {
            n_ranks,
            step_ns,
            total_ms: step_ns as f64 * steps as f64 / 1e6,
        }
    }
}

impl Default for AdmissionEstimator {
    fn default() -> Self {
        Self::new(MachineModel::dgx_h100())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halox_md::GrappaBuilder;

    #[test]
    fn prediction_monotone_in_system_size_and_steps() {
        let est = AdmissionEstimator::default();
        let small = GrappaBuilder::new(3_000).seed(1).build();
        let large = GrappaBuilder::new(24_000).seed(1).build();
        let ps = est.predict(&small, [2, 2, 1], 0.8, 100);
        let pl = est.predict(&large, [2, 2, 1], 0.8, 100);
        assert!(pl.step_ns > ps.step_ns, "{} !> {}", pl.step_ns, ps.step_ns);
        let longer = est.predict(&small, [2, 2, 1], 0.8, 1000);
        assert!(longer.total_ms > ps.total_ms);
        assert_eq!(longer.step_ns, ps.step_ns);
    }

    #[test]
    fn splitting_pays_off_only_past_fixed_costs() {
        let est = AdmissionEstimator::default();
        // Large system: per-atom work dwarfs the fixed kernel/halo costs,
        // so decomposing is predicted faster per step...
        let large = GrappaBuilder::new(48_000).seed(2).build();
        let serial = est.predict(&large, [1, 1, 1], 0.8, 10);
        let split = est.predict(&large, [2, 2, 1], 0.8, 10);
        assert_eq!(serial.n_ranks, 1);
        assert_eq!(split.n_ranks, 4);
        assert!(split.step_ns < serial.step_ns);
        // ...while a small system is dominated by fixed + halo costs and
        // the estimator prices the split *slower* — the signal admission
        // bin-packing exists to exploit.
        let small = GrappaBuilder::new(3_000).seed(2).build();
        let serial = est.predict(&small, [1, 1, 1], 0.8, 10);
        let split = est.predict(&small, [2, 2, 1], 0.8, 10);
        assert!(split.step_ns > serial.step_ns);
    }
}
