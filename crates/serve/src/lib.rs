//! # halox-serve — many MD jobs over a bounded worker pool
//!
//! The engine stack below runs *one* trajectory per [`halox_engine::Engine`].
//! Production MD is a fleet: hundreds of independent jobs of varying size and
//! priority sharing a fixed set of PE resources. This crate multiplexes them:
//!
//! - [`Job`] — a trajectory as a value: config + frontier checkpoint,
//!   suspendable at segment boundaries via the engine's checkpoint machinery
//!   and resumable on any worker, bitwise-identical to running straight
//!   through.
//! - [`halox_shmem::WorldPool`] (shmem layer) — worlds are leased and reset
//!   between tenants instead of built per run; a failed run poisons its lease
//!   so the next tenant gets a fresh world.
//! - [`JobService`] — admission control (an [`AdmissionEstimator`] over the
//!   `gpusim` cost models predicts per-step time before a job is accepted)
//!   and weighted fair-share scheduling across priorities.
//! - Reschedule-not-fail: a job whose world hits a dead PE or the terminal
//!   `Failed` health rung is rewound to its frontier checkpoint and
//!   rescheduled onto a fresh lease; per-job counters are surfaced through
//!   [`JobHandle::status`]/[`JobHandle::wait`].
//!
//! DESIGN.md §3.7 documents the lifecycle and scheduling contracts;
//! `halox-bench serve` drives the 200-job acceptance load.

pub mod estimator;
pub mod job;
pub mod service;

pub use estimator::{AdmissionEstimator, Prediction};
pub use job::{Job, JobId, JobSpec, Priority};
pub use service::{
    AdmissionError, JobHandle, JobResult, JobService, JobState, JobStatus, ServeConfig,
};
