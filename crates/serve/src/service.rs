//! The job service: admission, weighted fair-share scheduling, and
//! reschedule-not-fail fault handling over a bounded world pool.
//!
//! Scheduling is start-time fair queueing in miniature: each job carries a
//! virtual time that advances by `predicted_step_ns * slice / weight` per
//! slice it receives, and workers always dispatch the queued job with the
//! lowest virtual time (ties broken toward higher priority, then FIFO).
//! High-weight jobs therefore accrue virtual time slower and get
//! proportionally more slices under contention, without starving anyone —
//! every job's virtual time eventually becomes the minimum.

use crate::estimator::AdmissionEstimator;
use crate::job::{Job, JobId, JobSpec, Priority};
use halox_engine::EngineError;
use halox_gpusim::MachineModel;
use halox_md::{EnergyReport, System};
use halox_shmem::{PoolStats, WorldPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service sizing and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// World-pool capacity: at most this many `ShmemWorld`s exist at once.
    pub pool_worlds: usize,
    /// Worker threads advancing job slices.
    pub workers: usize,
    /// Steps per dispatch slice (each job rounds this down to whole
    /// neighbour-search segments; see [`Job::next_slice`]).
    pub slice_steps: usize,
    /// Admission: reject (`QueueFull`) past this many queued jobs.
    pub max_queue: usize,
    /// Admission: reject (`PredictedTooLong`) jobs whose estimated total
    /// run time exceeds this, when set.
    pub max_predicted_ms: Option<f64>,
    /// Backstop on the reschedule-not-fail contract: a job rescheduled this
    /// many times without completing is declared `Failed` (it is making no
    /// progress; infinite retries would wedge a pool slot forever).
    pub max_reschedules: usize,
    /// Machine the admission estimator prices jobs on.
    pub machine: MachineModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool_worlds: 4,
            workers: 4,
            slice_steps: 10,
            max_queue: 4096,
            max_predicted_ms: None,
            max_reschedules: 8,
            machine: MachineModel::dgx_h100(),
        }
    }
}

/// Why a submission was refused at the door.
#[derive(Debug)]
pub enum AdmissionError {
    QueueFull {
        queued: usize,
        max: usize,
    },
    PredictedTooLong {
        predicted_ms: f64,
        max_ms: f64,
    },
    /// The spec cannot run at all (infeasible decomposition): the same
    /// typed error a solo engine would surface at configuration time.
    Infeasible(EngineError),
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { queued, max } => {
                write!(f, "queue full: {queued} jobs queued (max {max})")
            }
            AdmissionError::PredictedTooLong {
                predicted_ms,
                max_ms,
            } => write!(
                f,
                "predicted run time {predicted_ms:.1} ms exceeds admission limit {max_ms:.1} ms"
            ),
            AdmissionError::Infeasible(e) => write!(f, "infeasible job: {e}"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Lifecycle of an admitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

/// A point-in-time view of one job, cheap to clone out of the service.
#[derive(Debug, Clone)]
pub struct JobStatus {
    pub id: JobId,
    pub name: String,
    pub state: JobState,
    pub priority: Priority,
    pub steps_done: usize,
    pub steps_total: usize,
    /// Rewind-to-frontier reschedules (the fault story's currency: a dead
    /// PE costs a reschedule, never the job).
    pub reschedules: usize,
    /// In-slice rewind-and-replay recoveries absorbed by the engine.
    pub recoveries: usize,
    /// Submission-to-first-dispatch wait.
    pub queue_wait: Duration,
    /// The admission estimator's per-step price (also the fair-share
    /// charging rate).
    pub predicted_step_ns: u64,
    /// Terminal error text, for `Failed` jobs.
    pub error: Option<String>,
}

/// Final trajectory of a `Done` job.
#[derive(Debug, Clone)]
pub struct JobResult {
    pub system: System,
    /// Full per-step energy history, step 0 to the end.
    pub energies: Vec<EnergyReport>,
}

struct SlotInner {
    status: JobStatus,
    result: Option<JobResult>,
}

struct Slot {
    m: Mutex<SlotInner>,
    cv: Condvar,
}

/// The caller's view of a submitted job.
#[derive(Clone)]
pub struct JobHandle {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("status", &self.status())
            .finish()
    }
}

impl JobHandle {
    pub fn status(&self) -> JobStatus {
        self.slot.m.lock().unwrap().status.clone()
    }

    /// Block until the job is `Done` or `Failed`; returns the terminal
    /// status and, for `Done`, the final trajectory.
    pub fn wait(&self) -> (JobStatus, Option<JobResult>) {
        let mut inner = self.slot.m.lock().unwrap();
        while !matches!(inner.status.state, JobState::Done | JobState::Failed) {
            inner = self.slot.cv.wait(inner).unwrap();
        }
        (inner.status.clone(), inner.result.clone())
    }
}

struct QueuedJob {
    job: Job,
    slot: Arc<Slot>,
    /// Fair-share virtual time: service received / priority weight.
    vtime: u128,
    /// FIFO tiebreak.
    seq: u64,
    predicted_step_ns: u64,
    submitted: Instant,
}

/// Lowest virtual time wins; ties go to the higher weight, then FIFO.
fn pick_index(queue: &[QueuedJob]) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .min_by_key(|(_, q)| (q.vtime, u64::MAX - q.job.priority().weight(), q.seq))
        .map(|(i, _)| i)
}

struct SchedState {
    queue: Vec<QueuedJob>,
    /// Jobs currently held by workers (they may re-queue themselves, so
    /// workers must not exit while any are in flight).
    running: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<SchedState>,
    cv: Condvar,
}

/// The multi-tenant job service. Dropping it drains the queue: workers
/// finish every admitted job before joining.
pub struct JobService {
    cfg: ServeConfig,
    estimator: AdmissionEstimator,
    pool: Arc<WorldPool>,
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    next_id: AtomicU64,
    next_seq: AtomicU64,
}

impl JobService {
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(cfg.workers >= 1 && cfg.pool_worlds >= 1);
        let pool = WorldPool::with_capacity(cfg.pool_worlds);
        let shared = Arc::new(Shared {
            state: Mutex::new(SchedState {
                queue: Vec::new(),
                running: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let pool = Arc::clone(&pool);
                let slice_steps = cfg.slice_steps;
                let max_reschedules = cfg.max_reschedules;
                std::thread::spawn(move || worker_loop(shared, pool, slice_steps, max_reschedules))
            })
            .collect();
        JobService {
            estimator: AdmissionEstimator::new(cfg.machine.clone()),
            cfg,
            pool,
            shared,
            workers,
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
        }
    }

    /// Admit a job or refuse it with a typed [`AdmissionError`]. An
    /// accepted job WILL reach a terminal state — `Done`, or `Failed` only
    /// past the reschedule backstop.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, AdmissionError> {
        let prediction =
            self.estimator
                .predict(&spec.system, spec.grid, spec.config.r_comm(), spec.steps);
        if let Some(max_ms) = self.cfg.max_predicted_ms {
            if prediction.total_ms > max_ms {
                return Err(AdmissionError::PredictedTooLong {
                    predicted_ms: prediction.total_ms,
                    max_ms,
                });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Job::new(id, spec).map_err(AdmissionError::Infeasible)?;
        let slot = Arc::new(Slot {
            m: Mutex::new(SlotInner {
                status: JobStatus {
                    id,
                    name: job.name().to_string(),
                    state: JobState::Queued,
                    priority: job.priority(),
                    steps_done: 0,
                    steps_total: job.steps_total(),
                    reschedules: 0,
                    recoveries: 0,
                    queue_wait: Duration::ZERO,
                    predicted_step_ns: prediction.step_ns,
                    error: None,
                },
                result: None,
            }),
            cv: Condvar::new(),
        });
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.queue.len() >= self.cfg.max_queue {
                return Err(AdmissionError::QueueFull {
                    queued: st.queue.len(),
                    max: self.cfg.max_queue,
                });
            }
            // Late arrivals start at the current minimum virtual time so
            // they compete fairly instead of starving incumbents.
            let vtime = st.queue.iter().map(|q| q.vtime).min().unwrap_or(0);
            st.queue.push(QueuedJob {
                job,
                slot: Arc::clone(&slot),
                vtime,
                seq,
                predicted_step_ns: prediction.step_ns,
                submitted: Instant::now(),
            });
        }
        self.shared.cv.notify_all();
        Ok(JobHandle { slot })
    }

    /// Pool accounting (world builds, reuses, poisoned returns).
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Stop accepting progress once the queue drains, and join the
    /// workers. Every already-admitted job still runs to a terminal state.
    pub fn shutdown(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    shared: Arc<Shared>,
    pool: Arc<WorldPool>,
    slice_steps: usize,
    max_reschedules: usize,
) {
    loop {
        let mut entry = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(i) = pick_index(&st.queue) {
                    st.running += 1;
                    break st.queue.remove(i);
                }
                // Only exit when nothing queued AND nothing in flight: a
                // running job may fail and re-queue itself.
                if st.shutdown && st.running == 0 {
                    return;
                }
                st = shared.cv.wait(st).unwrap();
            }
        };
        {
            let mut inner = entry.slot.m.lock().unwrap();
            if inner.status.state == JobState::Queued {
                inner.status.queue_wait = entry.submitted.elapsed();
            }
            inner.status.state = JobState::Running;
        }
        let lease = pool.lease(entry.job.key());
        let (lease, outcome) = entry.job.advance(lease, slice_steps);
        // Return the world (or free the poisoned slot) before queue work,
        // so a blocked worker can proceed immediately.
        drop(lease);
        match outcome {
            Ok(slice) if entry.job.done() => {
                let mut inner = entry.slot.m.lock().unwrap();
                inner.status.state = JobState::Done;
                inner.status.steps_done = entry.job.step();
                inner.status.reschedules = entry.job.reschedules;
                inner.status.recoveries = entry.job.recoveries();
                let (system, energies) = entry.job.into_result();
                inner.result = Some(JobResult { system, energies });
                drop(inner);
                entry.slot.cv.notify_all();
                let _ = slice;
                finish_dispatch(&shared);
            }
            Ok(slice) => {
                entry.vtime += entry.predicted_step_ns as u128 * slice as u128
                    / entry.job.priority().weight() as u128;
                {
                    let mut inner = entry.slot.m.lock().unwrap();
                    inner.status.steps_done = entry.job.step();
                    inner.status.recoveries = entry.job.recoveries();
                }
                requeue(&shared, entry);
            }
            Err(e) if entry.job.reschedules < max_reschedules => {
                // Reschedule, not fail: frontier unchanged, lease poisoned
                // and gone; the next dispatch replays on a fresh world.
                entry.job.reschedules += 1;
                {
                    let mut inner = entry.slot.m.lock().unwrap();
                    inner.status.reschedules = entry.job.reschedules;
                    inner.status.error = Some(format!("rescheduled after: {e}"));
                }
                requeue(&shared, entry);
            }
            Err(e) => {
                let mut inner = entry.slot.m.lock().unwrap();
                inner.status.state = JobState::Failed;
                inner.status.steps_done = entry.job.step();
                inner.status.reschedules = entry.job.reschedules;
                inner.status.error = Some(e.to_string());
                drop(inner);
                entry.slot.cv.notify_all();
                finish_dispatch(&shared);
            }
        }
    }
}

fn requeue(shared: &Shared, entry: QueuedJob) {
    let mut st = shared.state.lock().unwrap();
    st.running -= 1;
    st.queue.push(entry);
    drop(st);
    shared.cv.notify_all();
}

fn finish_dispatch(shared: &Shared) {
    let mut st = shared.state.lock().unwrap();
    st.running -= 1;
    drop(st);
    shared.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use halox_engine::{EngineConfig, ExchangeBackend};
    use halox_md::{GrappaBuilder, MinimizeOptions};
    use halox_shmem::WorldBackend;

    fn relaxed_system(n: usize, seed: u64) -> System {
        let mut sys = GrappaBuilder::new(n).seed(seed).temperature(200.0).build();
        halox_md::minimize::steepest_descent(&mut sys, MinimizeOptions::default());
        sys
    }

    fn spec(name: &str, sys: &System, steps: usize, priority: Priority) -> JobSpec {
        let mut config = EngineConfig::new(ExchangeBackend::NvshmemFused);
        config.nstlist = 5;
        config.world_backend = WorldBackend::Threads;
        config.checkpoint = None;
        JobSpec {
            name: name.into(),
            system: sys.clone(),
            grid: [2, 1, 1],
            config,
            steps,
            priority,
        }
    }

    #[test]
    fn service_runs_jobs_to_done_bitwise() {
        let sys = relaxed_system(3000, 31);
        let solo = {
            let s = spec("solo", &sys, 10, Priority::Normal);
            let mut engine = halox_engine::Engine::new(
                sys.clone(),
                halox_dd::DdGrid::new(s.grid),
                s.config.clone(),
            );
            engine.run(10)
        };
        let mut svc = JobService::new(ServeConfig {
            pool_worlds: 2,
            workers: 2,
            slice_steps: 5,
            ..ServeConfig::default()
        });
        let handles: Vec<JobHandle> = (0..4)
            .map(|i| {
                svc.submit(spec(&format!("job-{i}"), &sys, 10, Priority::Normal))
                    .unwrap()
            })
            .collect();
        for h in &handles {
            let (status, result) = h.wait();
            assert_eq!(status.state, JobState::Done, "{:?}", status.error);
            assert_eq!(status.steps_done, 10);
            let result = result.unwrap();
            assert_eq!(result.energies.len(), 10);
            for (a, b) in solo.energies.iter().zip(&result.energies) {
                assert_eq!(a.total().to_bits(), b.total().to_bits());
            }
        }
        svc.shutdown();
        let stats = svc.pool_stats();
        assert!(stats.built <= 2, "pool must cap world builds: {stats:?}");
        assert!(stats.reused >= 1, "worlds must recycle: {stats:?}");
    }

    #[test]
    fn admission_rejects_overlong_and_overfull() {
        let sys = relaxed_system(3000, 32);
        let svc = JobService::new(ServeConfig {
            pool_worlds: 1,
            workers: 1,
            max_queue: 0,
            max_predicted_ms: Some(0.000_001),
            ..ServeConfig::default()
        });
        let err = svc
            .submit(spec("too-long", &sys, 1_000_000, Priority::Normal))
            .expect_err("must exceed the latency budget");
        assert!(
            matches!(err, AdmissionError::PredictedTooLong { .. }),
            "{err}"
        );

        let svc = JobService::new(ServeConfig {
            pool_worlds: 1,
            workers: 1,
            max_queue: 0,
            ..ServeConfig::default()
        });
        let err = svc
            .submit(spec("no-room", &sys, 10, Priority::Normal))
            .expect_err("zero-length queue admits nothing");
        assert!(matches!(err, AdmissionError::QueueFull { .. }), "{err}");
    }

    #[test]
    fn fair_share_pick_prefers_low_vtime_then_weight() {
        let sys = relaxed_system(3000, 33);
        let mk = |name: &str, p: Priority, vtime: u128, seq: u64| QueuedJob {
            job: Job::new(seq, spec(name, &sys, 10, p)).unwrap(),
            slot: Arc::new(Slot {
                m: Mutex::new(SlotInner {
                    status: JobStatus {
                        id: seq,
                        name: name.into(),
                        state: JobState::Queued,
                        priority: p,
                        steps_done: 0,
                        steps_total: 10,
                        reschedules: 0,
                        recoveries: 0,
                        queue_wait: Duration::ZERO,
                        predicted_step_ns: 1,
                        error: None,
                    },
                    result: None,
                }),
                cv: Condvar::new(),
            }),
            vtime,
            seq,
            predicted_step_ns: 1,
            submitted: Instant::now(),
        };
        // Lowest vtime wins outright.
        let q = vec![
            mk("a", Priority::High, 100, 0),
            mk("b", Priority::Low, 10, 1),
        ];
        assert_eq!(pick_index(&q), Some(1));
        // Equal vtime: the heavier priority goes first.
        let q = vec![
            mk("a", Priority::Low, 50, 0),
            mk("b", Priority::High, 50, 1),
        ];
        assert_eq!(pick_index(&q), Some(1));
        // Full tie: FIFO.
        let q = vec![
            mk("a", Priority::Normal, 50, 0),
            mk("b", Priority::Normal, 50, 1),
        ];
        assert_eq!(pick_index(&q), Some(0));
    }
}
