//! A trajectory as a schedulable value.
//!
//! [`Job`] owns what `Engine` used to own per-process — config, system,
//! energy history, chaos engine, recovery counters — with the trajectory
//! frontier held as an in-memory [`Checkpoint`]. Each dispatch builds an
//! engine from the frontier, runs one slice on a leased world, and suspends
//! back into the checkpoint, so a job can hop workers (and worlds) between
//! slices while staying bitwise-identical to a solo run.

use halox_dd::DdGrid;
use halox_engine::{
    Checkpoint, Engine, EngineConfig, EngineError, StatsSnapshot, WorldKey, WorldLease,
};
use halox_md::{EnergyReport, System};
use halox_shmem::ChaosEngine;
use std::sync::Arc;

pub type JobId = u64;

/// Scheduling priority; the weight is the job's fair-share of service time
/// (a `High` job accrues virtual time at a quarter of a `Low` job's rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    Low,
    Normal,
    High,
}

impl Priority {
    pub fn weight(self) -> u64 {
        match self {
            Priority::Low => 1,
            Priority::Normal => 2,
            Priority::High => 4,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Everything needed to admit and run one trajectory.
#[derive(Debug, Clone)]
pub struct JobSpec {
    pub name: String,
    pub system: System,
    pub grid: [usize; 3],
    pub config: EngineConfig,
    /// Total MD steps the job must complete.
    pub steps: usize,
    pub priority: Priority,
}

/// One admitted trajectory: frontier checkpoint plus the durable run state
/// that must outlive any single engine (chaos engine, recovery counters).
pub struct Job {
    id: JobId,
    name: String,
    priority: Priority,
    config: EngineConfig,
    steps_total: usize,
    key: WorldKey,
    /// Trajectory frontier, always at a segment boundary (or the job end).
    state: Checkpoint,
    /// ONE chaos engine for the job's whole lifetime: operation counters
    /// (and thus one-shot fault triggers) must survive reschedules, or a
    /// consumed `KillPe` would re-fire in every fresh engine and the job
    /// could never make progress.
    chaos: Option<Arc<ChaosEngine>>,
    /// Times this job was rewound to its frontier and re-queued after a
    /// failed slice (the service increments this).
    pub reschedules: usize,
    recoveries: usize,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("priority", &self.priority)
            .field("step", &self.state.step)
            .field("steps_total", &self.steps_total)
            .field("reschedules", &self.reschedules)
            .field("chaotic", &self.chaos.is_some())
            .finish_non_exhaustive()
    }
}

impl Job {
    /// Admit a spec: validate that the system decomposes on its grid (the
    /// same typed errors a run would surface), fix the world key, build the
    /// job's chaos engine if the config carries a fault plan, and take the
    /// step-0 baseline as the initial frontier.
    pub fn new(id: JobId, spec: JobSpec) -> Result<Self, EngineError> {
        let JobSpec {
            name,
            system,
            grid,
            config,
            steps,
            priority,
        } = spec;
        let engine = Engine::new(system, DdGrid::new(grid), config.clone());
        let key = engine.world_key()?;
        let chaos = config
            .chaos
            .as_ref()
            .map(|plan| Arc::new(ChaosEngine::new(plan.clone(), key.topology.npes)));
        // Step-0 baseline: boundaries have not moved yet (a resumed
        // slice carries the engine's shifted bounds via `suspend`).
        let bounds = engine.bounds().clone();
        let state = Checkpoint {
            fingerprint: engine.fingerprint(),
            step: 0,
            system: engine.system,
            energies: Vec::new(),
            stats: StatsSnapshot::default(),
            bounds,
        };
        Ok(Job {
            id,
            name,
            priority,
            config,
            steps_total: steps,
            key,
            state,
            chaos,
            reschedules: 0,
            recoveries: 0,
        })
    }

    pub fn id(&self) -> JobId {
        self.id
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The pool key this job's slices lease worlds under.
    pub fn key(&self) -> WorldKey {
        self.key
    }

    /// Steps completed (the frontier).
    pub fn step(&self) -> usize {
        self.state.step as usize
    }

    pub fn steps_total(&self) -> usize {
        self.steps_total
    }

    pub fn done(&self) -> bool {
        self.step() >= self.steps_total
    }

    /// Rewind-and-replay recoveries absorbed *inside* slices (distinct from
    /// `reschedules`, which rewinds happen *between* slices).
    pub fn recoveries(&self) -> usize {
        self.recoveries
    }

    /// The next slice length: at most `max_steps`, rounded down to whole
    /// neighbour-search segments so suspension lands on a segment boundary
    /// — a mid-segment suspend would change repartition points and break
    /// the bitwise-vs-solo contract. Only the job's final slice may be a
    /// partial segment (the solo run ends on the same partial segment).
    pub fn next_slice(&self, max_steps: usize) -> usize {
        let remaining = self.steps_total.saturating_sub(self.step());
        let nst = self.config.nstlist.max(1);
        let aligned = (max_steps / nst).max(1) * nst;
        remaining.min(aligned)
    }

    /// Run one slice on `lease`: build an engine at the frontier, advance,
    /// suspend back. On success the frontier moves; on failure it stays put
    /// (the engine never gathered a failed segment) and the lease comes
    /// back poisoned — the caller re-queues the job, and its next slice
    /// replays from the same frontier on a fresh world.
    pub fn advance(
        &mut self,
        lease: WorldLease,
        max_steps: usize,
    ) -> (WorldLease, Result<usize, EngineError>) {
        let slice = self.next_slice(max_steps);
        let mut engine =
            match Engine::resume_from_checkpoint(self.state.clone(), self.config.clone()) {
                Ok(e) => e,
                Err(e) => return (lease, Err(e)),
            };
        if let Some(chaos) = &self.chaos {
            engine.preset_chaos(Arc::clone(chaos));
        }
        engine.attach_world(lease);
        let result = engine.try_run(slice);
        let lease = engine.take_world().expect("lease attached above");
        match result {
            Ok(stats) => {
                // Counters from the snapshot are cumulative across slices.
                self.recoveries = stats.recoveries;
                self.state = engine
                    .suspend()
                    .expect("a resumed engine refreshes its seed at run end");
                (lease, Ok(slice))
            }
            Err(e) => {
                // Revive chaos-killed PEs so the replay on a fresh lease can
                // make progress; one-shot triggers stay consumed (the op
                // counters live in the engine we keep).
                if let Some(chaos) = &self.chaos {
                    chaos.revive_all();
                }
                (lease, Err(e))
            }
        }
    }

    /// Faults this job's chaos engine has injected so far (0 without a
    /// fault plan).
    pub fn faults_injected(&self) -> u64 {
        self.chaos.as_ref().map_or(0, |c| c.report().total())
    }

    /// Consume the finished job into its final system and full per-step
    /// energy history.
    pub fn into_result(self) -> (System, Vec<EnergyReport>) {
        (self.state.system, self.state.energies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halox_engine::ExchangeBackend;
    use halox_md::{GrappaBuilder, MinimizeOptions};
    use halox_shmem::WorldBackend;

    fn relaxed_system(n: usize, seed: u64) -> System {
        let mut sys = GrappaBuilder::new(n).seed(seed).temperature(200.0).build();
        halox_md::minimize::steepest_descent(&mut sys, MinimizeOptions::default());
        sys
    }

    fn spec(name: &str, sys: &System, steps: usize) -> JobSpec {
        let mut config = EngineConfig::new(ExchangeBackend::NvshmemFused);
        config.nstlist = 5;
        config.world_backend = WorldBackend::Threads;
        config.checkpoint = None;
        JobSpec {
            name: name.into(),
            system: sys.clone(),
            grid: [2, 1, 1],
            config,
            steps,
            priority: Priority::Normal,
        }
    }

    #[test]
    fn sliced_job_matches_solo_run_bitwise() {
        let sys = relaxed_system(3000, 21);
        let solo_spec = spec("solo", &sys, 12);
        let mut solo = Engine::new(
            sys.clone(),
            DdGrid::new(solo_spec.grid),
            solo_spec.config.clone(),
        );
        let solo_stats = solo.run(12);

        let mut job = Job::new(1, spec("sliced", &sys, 12)).unwrap();
        let mut slices = 0;
        while !job.done() {
            let lease = WorldLease::solo(job.key());
            let (_lease, res) = job.advance(lease, 5);
            res.unwrap();
            slices += 1;
        }
        // 5 + 5 + 2: the final slice is the trailing partial segment.
        assert_eq!(slices, 3);
        assert_eq!(job.step(), 12);
        let (system, energies) = job.into_result();
        assert_eq!(energies.len(), 12);
        for (a, b) in solo_stats.energies.iter().zip(&energies) {
            assert_eq!(a.total().to_bits(), b.total().to_bits());
        }
        for (a, b) in solo.system.positions.iter().zip(&system.positions) {
            assert_eq!(a.x.to_bits(), b.x.to_bits());
            assert_eq!(a.y.to_bits(), b.y.to_bits());
            assert_eq!(a.z.to_bits(), b.z.to_bits());
        }
    }

    #[test]
    fn slices_align_to_segments() {
        let sys = relaxed_system(3000, 22);
        let job = Job::new(2, spec("align", &sys, 23)).unwrap();
        assert_eq!(job.next_slice(7), 5, "rounded down to one segment");
        assert_eq!(job.next_slice(10), 10);
        assert_eq!(job.next_slice(3), 5, "never a mid-trajectory partial");
        assert_eq!(job.next_slice(100), 23, "final stretch runs to the end");
    }

    #[test]
    fn job_debug_is_a_summary() {
        let sys = relaxed_system(3000, 23);
        let job = Job::new(3, spec("dbg", &sys, 10)).unwrap();
        let dbg = format!("{job:?}");
        assert!(dbg.contains("Job") && dbg.contains("steps_total"), "{dbg}");
        assert!(dbg.len() < 500, "{}", dbg.len());
    }
}
