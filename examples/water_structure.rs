//! Structural analysis of a domain-decomposed run: O-O radial distribution
//! function and mean-squared displacement, computed from trajectories the
//! fused halo exchange produced — the kind of science a downstream MD user
//! actually does with the engine.
//!
//! ```sh
//! cargo run --release --example water_structure
//! ```

use halox::engine::Thermostat;
use halox::md::analysis::{MsdTracker, Rdf};
use halox::md::AtomKind;
use halox::prelude::*;

fn main() {
    println!("Building and relaxing a 9k-atom water-ethanol system...");
    let mut system = GrappaBuilder::new(9_000)
        .seed(11)
        .temperature(250.0)
        .build();
    steepest_descent(
        &mut system,
        MinimizeOptions {
            steps: 80,
            ..MinimizeOptions::default()
        },
    );

    let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
    cfg.nstlist = 10;
    cfg.thermostat = Some(Thermostat {
        t_ref: 300.0,
        tau_ps: 0.01,
    });
    let mut engine = Engine::new(system, DdGrid::new([2, 2, 1]), cfg);

    println!("Equilibrating 100 steps at 300 K on 4 ranks...");
    engine.run(100);

    println!("Sampling 10 frames (20 steps apart) for RDF and MSD...");
    let mut rdf = Rdf::new(1.2, 60);
    let mut msd = MsdTracker::new();
    let dt_frame = 20.0 * engine.config.dt_ps as f64;
    for frame in 0..10 {
        msd.record(
            &engine.system.pbc,
            frame as f64 * dt_frame,
            &engine.system.positions,
        );
        rdf.accumulate(
            &engine.system.pbc,
            &engine.system.positions,
            &engine.system.kinds,
            AtomKind::Ow,
            AtomKind::Ow,
        );
        engine.run(20);
    }

    println!("\nO-O radial distribution function:");
    println!("{:>8} {:>8}", "r (nm)", "g(r)");
    for (r, g) in rdf.g_of_r().iter().step_by(4) {
        let bar = "#".repeat((g * 12.0) as usize);
        println!("{r:>8.3} {g:>8.2}  {bar}");
    }

    let (t, m) = *msd.series().last().unwrap();
    println!("\nMSD after {t:.3} ps: {m:.4} nm^2");
    if let Some(d) = msd.diffusion_estimate() {
        println!("Einstein diffusion estimate: {d:.3e} nm^2/ps");
    }
    println!("done.");
}
