//! Rank specialization with team-based symmetric allocation — the paper's
//! future-work item (§5.3/§7) demonstrated end to end.
//!
//! GROMACS dedicates some ranks to long-range PME work while the rest (PP
//! ranks) run particle-particle forces and the halo exchange. NVSHMEM's
//! world-wide symmetric allocation breaks this split: PP halo buffers would
//! have to exist on PME ranks too. With team-scoped allocation, each group
//! allocates only what it uses; this example runs a PP team doing real
//! fused-style ring exchanges next to a PME-like team doing reduction work,
//! and reports the memory the team allocation saves.
//!
//! ```sh
//! cargo run --release --example rank_specialization
//! ```

use halox::prelude::Vec3;
use halox::shmem::{ShmemWorld, SymVec3, Team, TeamSymVec3, Topology};

const PP_BUF_LEN: usize = 200_000; // a halo-exchange coordinate buffer
const PME_BUF_LEN: usize = 20_000; // an FFT-grid-slab stand-in

fn main() {
    let npes = 8;
    // Paper-style split: the last rank of each 4-GPU node becomes PME.
    let teams = Team::split(npes, |pe| usize::from(pe % 4 == 3));
    let pp = teams[0].clone();
    let pme = teams[1].clone();
    println!(
        "world: {npes} PEs -> PP team {:?}, PME team {:?}",
        pp.members(),
        pme.members()
    );

    // Team allocations: segments exist only on members.
    let pp_coords = TeamSymVec3::alloc(&pp, PP_BUF_LEN);
    let pme_grid = TeamSymVec3::alloc(&pme, PME_BUF_LEN);
    let team_bytes = (pp.size() * PP_BUF_LEN + pme.size() * PME_BUF_LEN) * 12;
    let world_bytes = npes * (PP_BUF_LEN + PME_BUF_LEN) * 12;
    println!(
        "symmetric memory: world-wide {} MiB vs team-scoped {} MiB ({}% saved)",
        world_bytes / (1 << 20),
        team_bytes / (1 << 20),
        100 - team_bytes * 100 / world_bytes
    );

    // The world-wide model for comparison (what plain NVSHMEM forces):
    let _world_wide = SymVec3::alloc(npes, 1); // every PE pays for every buffer

    let world = ShmemWorld::new(Topology::islands(npes, 4), 4);
    let (ppr, pmer, coords, grid) = (&pp, &pme, &pp_coords, &pme_grid);
    world.run(|pe| {
        if let Some(tr) = ppr.team_rank(pe.id) {
            // PP work: a staged ring coordinate exchange within the team.
            let next = ppr.world_rank((tr + 1) % ppr.size());
            for k in 0..16 {
                coords.set(next, k, Vec3::splat((pe.id * 100 + k) as f32));
            }
            ppr.barrier(pe.id);
            let prev = ppr.world_rank((tr + ppr.size() - 1) % ppr.size());
            let got = coords.get(pe.id, 3);
            assert_eq!(got, Vec3::splat((prev * 100 + 3) as f32));
            // Team reduction over "local work" counters.
            let total = ppr.allreduce_sum(pe.id, 1.0);
            assert_eq!(total, ppr.size() as f64);
        } else {
            // PME-like work: fill a grid slab and reduce its checksum over
            // the PME team only.
            for k in 0..64 {
                grid.set(pe.id, k % PME_BUF_LEN, Vec3::splat(k as f32));
            }
            let checksum = pmer.allreduce_sum(pe.id, pe.id as f64);
            assert_eq!(checksum, (3 + 7) as f64);
        }
    });
    println!("PP ring exchange + PME reductions completed with disjoint team allocations.");
    println!("done.");
}
