//! Intra-node strong scaling (the paper's Fig 3 scenario): MPI vs
//! thread-MPI vs NVSHMEM on a DGX-H100, 2-8 GPUs, several system sizes.
//!
//! ```sh
//! cargo run --release --example intranode_scaling
//! ```

use halox::core::sched::{simulate, Backend};
use halox::prelude::*;

fn main() {
    let machine = MachineModel::dgx_h100();
    println!(
        "Intra-node strong scaling on {} (timing plane)",
        machine.name
    );
    println!(
        "{:>9} {:>5} {:>9} {:>11} {:>11} {:>11} {:>9}",
        "atoms", "gpus", "grid", "MPI", "tMPI", "NVSHMEM", "NVS/MPI"
    );
    for &atoms in &[45_000usize, 90_000, 180_000, 360_000] {
        for &gpus in &[2usize, 4, 8] {
            let box_l = halox::dd::grappa_box(atoms, 100.0);
            let opts = GridOptions {
                r_comm: 1.05,
                ..Default::default()
            };
            let grid = choose_grid(gpus, box_l, &opts);
            let model = WorkloadModel::grappa(atoms, 1.05, grid);
            let input = ScheduleInput::from_workload(machine.clone(), &model);
            let mpi = simulate(Backend::Mpi, &input, 8, 3).ns_per_day(2.0);
            let tmpi = simulate(Backend::ThreadMpi, &input, 8, 3).ns_per_day(2.0);
            let nvs = simulate(Backend::Nvshmem, &input, 8, 3).ns_per_day(2.0);
            println!(
                "{:>9} {:>5} {:>9} {:>11.0} {:>11.0} {:>11.0} {:>8.2}x",
                atoms,
                gpus,
                format!("{}x{}x{}", grid.dims[0], grid.dims[1], grid.dims[2]),
                mpi,
                tmpi,
                nvs,
                nvs / mpi
            );
        }
    }
    println!("\nExpected shape (paper Fig 3): NVSHMEM wins big on small systems,");
    println!("advantage shrinks as systems become compute-bound; thread-MPI sits between.");
}
