//! Device-side timing breakdowns (the paper's Figs 6-8 methodology):
//! Local work / Non-local work / Non-overlap / Time-per-step, plus a
//! functional-plane phase-timer demo on a real multi-threaded run.
//!
//! ```sh
//! cargo run --release --example device_timing
//! ```

use halox::core::sched::{simulate, Backend};
use halox::engine::PhaseTimer;
use halox::prelude::*;

fn breakdown(machine: &MachineModel, atoms: usize, dims: [usize; 3]) {
    let grid = DdGrid::new(dims);
    let model = WorkloadModel::grappa(atoms, 1.05, grid);
    let input = ScheduleInput::from_workload(machine.clone(), &model);
    for backend in [Backend::Mpi, Backend::Nvshmem] {
        let m = simulate(backend, &input, 8, 3);
        println!(
            "{:>9} {:>9} {:>8} local {:>7.1}us  nonlocal {:>7.1}us  nonoverlap {:>7.1}us  step {:>7.1}us",
            atoms,
            format!("{}x{}x{}", dims[0], dims[1], dims[2]),
            backend.label(),
            m.local_work_ns / 1e3,
            m.nonlocal_work_ns / 1e3,
            m.nonoverlap_ns / 1e3,
            m.time_per_step_ns / 1e3,
        );
    }
}

fn main() {
    println!("== Simulated device-side timing, intra-node 4xH100 (Fig 6 scenario) ==");
    let dgx = MachineModel::dgx_h100();
    for atoms in [45_000usize, 180_000, 360_000] {
        breakdown(&dgx, atoms, [4, 1, 1]);
    }

    println!("\n== Multi-node, 11.25k atoms/GPU: 1D -> 2D -> 3D DD (Fig 7 scenario) ==");
    let eos = MachineModel::eos();
    breakdown(&eos, 90_000, [8, 1, 1]);
    breakdown(&eos, 180_000, [8, 2, 1]);
    breakdown(&eos, 360_000, [8, 2, 2]);

    println!("\n== Functional plane: wall-clock phases of a real threaded run ==");
    let mut system = GrappaBuilder::new(6_000).seed(7).temperature(200.0).build();
    steepest_descent(&mut system, MinimizeOptions::default());
    let mut timer = PhaseTimer::new();
    let mut engine = Engine::new(
        system,
        DdGrid::new([2, 2, 1]),
        EngineConfig::new(ExchangeBackend::NvshmemFused),
    );
    let stats = timer.time("md_run", || engine.run(20));
    for (phase, total, count) in timer.iter() {
        println!(
            "  {phase}: {:.1} ms total over {count} call(s); engine reported {:.3} s wall",
            total.as_secs_f64() * 1e3,
            stats.wall_seconds
        );
    }
}
