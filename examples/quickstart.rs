//! Quickstart: domain-decomposed MD with the fused GPU-initiated halo
//! exchange, validated against a single-rank reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use halox::prelude::*;

fn main() {
    // 1. Build a grappa-like water-ethanol system (~9k atoms) and relax the
    //    lattice contacts, the role `gmx grompp` inputs play for the paper.
    println!("Building and relaxing a 9k-atom water-ethanol system...");
    let mut system = GrappaBuilder::new(9_000)
        .seed(2024)
        .temperature(250.0)
        .build();
    let (e0, e1) = steepest_descent(&mut system, MinimizeOptions::default());
    println!("  minimization: {e0:.0} -> {e1:.0} kJ/mol");

    // 2. Decompose over a 2x2x1 grid (one PE thread per DD rank) and run
    //    with the fused NVSHMEM-style exchange.
    let grid = DdGrid::new([2, 2, 1]);
    let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
    cfg.nstlist = 10;
    let mut engine = Engine::new(system.clone(), grid, cfg);
    println!(
        "Running 50 steps on {} ranks (fused NVSHMEM-style exchange)...",
        grid.n_ranks()
    );
    let stats = engine.run(50);
    let first = stats.energies.first().expect("50-step run");
    let last = stats.final_energy().expect("50-step run");
    println!(
        "  E_total step 1: {:.0} kJ/mol   step 50: {:.0} kJ/mol   ({} steps, {:.2} s wall)",
        first.total(),
        last.total(),
        stats.steps,
        stats.wall_seconds
    );

    // 3. Cross-check: the serialized-pulse (MPI-style) backend must produce
    //    the same trajectory.
    let mut cfg2 = EngineConfig::new(ExchangeBackend::Mpi);
    cfg2.nstlist = 10;
    let mut engine2 = Engine::new(system, grid, cfg2);
    engine2.run(50);
    let mut max_dev = 0.0f32;
    for (a, b) in engine
        .system
        .positions
        .iter()
        .zip(&engine2.system.positions)
    {
        max_dev = max_dev.max(engine.system.pbc.dist2(*a, *b).sqrt());
    }
    println!("  max position deviation fused vs serialized backend: {max_dev:.2e} nm");
    assert!(max_dev < 1e-3, "backends diverged");

    // 4. A taste of the timing plane: the headline intra-node comparison.
    let machine = MachineModel::dgx_h100();
    let model = WorkloadModel::grappa(45_000, 1.05, DdGrid::new([4, 1, 1]));
    let input = ScheduleInput::from_workload(machine, &model);
    let mpi = simulate(Backend::Mpi, &input, 8, 3);
    let nvs = simulate(Backend::Nvshmem, &input, 8, 3);
    println!(
        "Timing plane, 45k atoms on 4 H100s: MPI {:.0} ns/day vs NVSHMEM {:.0} ns/day ({:+.0}%)",
        mpi.ns_per_day(2.0),
        nvs.ns_per_day(2.0),
        (nvs.ns_per_day(2.0) / mpi.ns_per_day(2.0) - 1.0) * 100.0
    );
    println!("done.");
}
