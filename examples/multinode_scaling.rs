//! Multi-node strong scaling (the paper's Fig 4/5 scenarios): Eos-style
//! NVLink+InfiniBand vs GB200 NVL72 multi-node NVLink.
//!
//! ```sh
//! cargo run --release --example multinode_scaling
//! ```

use halox::core::sched::{simulate, Backend};
use halox::prelude::*;

fn sweep(machine: &MachineModel, atoms: usize, node_list: &[usize]) {
    println!("\n-- {} atoms on {} --", atoms, machine.name);
    println!(
        "{:>6} {:>6} {:>9} {:>12} {:>12} {:>9} {:>7}",
        "nodes", "gpus", "grid", "MPI ns/day", "NVS ns/day", "NVS/MPI", "eff%"
    );
    let mut base: Option<(usize, f64)> = None;
    for &nodes in node_list {
        let gpus = nodes * machine.gpus_per_node;
        let box_l = halox::dd::grappa_box(atoms, 100.0);
        let opts = GridOptions {
            r_comm: 1.05,
            ..Default::default()
        };
        let grid = choose_grid(gpus, box_l, &opts);
        let model = WorkloadModel::grappa(atoms, 1.05, grid);
        let input = ScheduleInput::from_workload(machine.clone(), &model);
        let mpi = simulate(Backend::Mpi, &input, 8, 3).ns_per_day(2.0);
        let nvs = simulate(Backend::Nvshmem, &input, 8, 3).ns_per_day(2.0);
        let (n0, p0) = *base.get_or_insert((nodes, nvs));
        println!(
            "{:>6} {:>6} {:>9} {:>12.0} {:>12.0} {:>8.2}x {:>6.0}",
            nodes,
            gpus,
            format!("{}x{}x{}", grid.dims[0], grid.dims[1], grid.dims[2]),
            mpi,
            nvs,
            nvs / mpi,
            nvs * n0 as f64 / (p0 * nodes as f64) * 100.0
        );
    }
}

fn main() {
    let eos = MachineModel::eos();
    sweep(&eos, 720_000, &[1, 2, 4, 8, 16]);
    sweep(&eos, 5_760_000, &[2, 4, 8, 16, 32, 64, 128]);
    sweep(&eos, 23_040_000, &[8, 16, 32, 64, 128, 288]);

    let gb200 = MachineModel::gb200_nvl72();
    sweep(&gb200, 720_000, &[1, 2, 4, 8]);
    sweep(&gb200, 1_440_000, &[1, 2, 4, 8]);

    println!("\nExpected shape (paper Figs 4/5): NVSHMEM advantage grows with scale");
    println!("(up to ~1.3x at 128 nodes); MPI holds a small edge for the largest");
    println!("systems at low node counts, where compute hides all communication.");
}
