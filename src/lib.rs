//! # halox — GPU-initiated fused halo exchange for MD strong scaling
//!
//! A Rust reproduction of *"Redesigning GROMACS Halo Exchange: Improving
//! Strong Scaling with GPU-initiated NVSHMEM"* (SC Workshops '25): the fused
//! pack+communicate+notify halo exchange with dependency partitioning, built
//! on from-scratch substrates — an MD engine, a neutral-territory
//! eighth-shell domain decomposition, a thread-based PGAS runtime standing
//! in for NVSHMEM, and a discrete-event GPU-cluster timing simulator that
//! regenerates the paper's evaluation figures.
//!
//! ```
//! use halox::prelude::*;
//!
//! // Build a small water-ethanol system, relax it, and run 10 steps of
//! // domain-decomposed MD with the fused NVSHMEM-style halo exchange.
//! let mut system = GrappaBuilder::new(3000).seed(1).temperature(200.0).build();
//! steepest_descent(&mut system, MinimizeOptions::default());
//! let mut engine = Engine::new(
//!     system,
//!     DdGrid::new([2, 2, 1]),
//!     EngineConfig::new(ExchangeBackend::NvshmemFused),
//! );
//! let stats = engine.run(10);
//! assert_eq!(stats.energies.len(), 10);
//! ```

pub use halox_core as core;
pub use halox_dd as dd;
pub use halox_engine as engine;
pub use halox_gpusim as gpusim;
pub use halox_md as md;
pub use halox_serve as serve;
pub use halox_shmem as shmem;
pub use halox_trace as trace;

/// The most common entry points.
pub mod prelude {
    pub use halox_core::sched::{simulate, Backend, ScheduleInput, StepMetrics};
    pub use halox_core::{build_contexts, CommContext, FusedBuffers};
    pub use halox_dd::{build_partition, choose_grid, DdGrid, GridOptions, WorkloadModel};
    pub use halox_engine::{Engine, EngineConfig, ExchangeBackend, RunStats};
    pub use halox_gpusim::MachineModel;
    pub use halox_md::minimize::{steepest_descent, MinimizeOptions};
    pub use halox_md::{GrappaBuilder, ReferenceSimulation, System, Vec3};
    pub use halox_serve::{JobService, JobSpec, Priority, ServeConfig};
    pub use halox_shmem::{Pe, ShmemWorld, Topology, WorldPool};
}
