//! End-to-end "downstream user" test: equilibrate with the thermostat,
//! stream trajectory frames through the observer hook, and compute
//! structure/dynamics observables — all on top of the fused GPU-initiated
//! halo exchange.

use halox::engine::Thermostat;
use halox::md::analysis::{MsdTracker, Rdf};
use halox::md::trajectory::{read_xyz_frame, TrajectoryWriter};
use halox::md::AtomKind;
use halox::prelude::*;
use std::io::BufReader;

#[test]
fn trajectory_rdf_and_msd_from_decomposed_run() {
    let mut system = GrappaBuilder::new(6_000)
        .seed(2025)
        .temperature(250.0)
        .build();
    steepest_descent(&mut system, MinimizeOptions::default());

    let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
    cfg.nstlist = 10;
    cfg.thermostat = Some(Thermostat {
        t_ref: 300.0,
        tau_ps: 0.01,
    });
    let mut engine = Engine::new(system, DdGrid::new([2, 2, 1]), cfg);

    let mut writer = TrajectoryWriter::new(Vec::<u8>::new());
    let mut rdf = Rdf::new(1.0, 50);
    let mut msd = MsdTracker::new();
    let dt = engine.config.dt_ps as f64;
    engine.run_with_observer(50, |done, sys| {
        writer
            .write_frame(&sys.pbc, &sys.kinds, &sys.positions, done as f64 * dt)
            .unwrap();
        rdf.accumulate(
            &sys.pbc,
            &sys.positions,
            &sys.kinds,
            AtomKind::Ow,
            AtomKind::Ow,
        );
        msd.record(&sys.pbc, done as f64 * dt, &sys.positions);
    });

    // Trajectory: 5 segments -> 5 readable frames.
    assert_eq!(writer.frames_written(), 5);
    let buf = writer.into_inner();
    let mut reader = BufReader::new(&buf[..]);
    let mut frames = 0;
    while let Some(f) = read_xyz_frame(&mut reader).unwrap() {
        assert_eq!(f.positions.len(), 6_000);
        frames += 1;
    }
    assert_eq!(frames, 5);

    // Structure: empty steric core, non-trivial first peak.
    let g = rdf.g_of_r();
    let g_small: f64 = g.iter().take(8).map(|&(_, v)| v).sum();
    assert!(g_small < 0.5, "steric core not empty: {g_small}");
    let peak = g.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    assert!(peak > 1.2, "no liquid structure: peak g = {peak}");

    // Dynamics: atoms moved, MSD monotone-ish and finite.
    let series = msd.series();
    assert_eq!(series.len(), 5);
    let last = series.last().unwrap().1;
    assert!(last > 0.0 && last.is_finite());
    assert!(last < 1.0, "MSD {last} nm^2 implausible for 25 fs");
}

#[test]
fn integrators_give_consistent_equilibrium_structure() {
    use halox::engine::Integrator;
    // Leapfrog and velocity Verlet must sample the same structure.
    let mut system = GrappaBuilder::new(3_000)
        .seed(2026)
        .temperature(250.0)
        .build();
    steepest_descent(&mut system, MinimizeOptions::default());
    let rdf_of = |integrator: Integrator| {
        let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
        cfg.nstlist = 10;
        cfg.integrator = integrator;
        let mut engine = Engine::new(system.clone(), DdGrid::new([2, 1, 1]), cfg);
        let mut rdf = Rdf::new(0.8, 16);
        engine.run_with_observer(20, |_, sys| {
            rdf.accumulate(
                &sys.pbc,
                &sys.positions,
                &sys.kinds,
                AtomKind::Ow,
                AtomKind::Ow,
            );
        });
        rdf.g_of_r()
    };
    let a = rdf_of(Integrator::Leapfrog);
    let b = rdf_of(Integrator::VelocityVerlet);
    for (&(r, ga), &(_, gb)) in a.iter().zip(&b) {
        assert!((ga - gb).abs() < 0.4, "g({r}) differs: {ga} vs {gb}");
    }
}
