//! Service-layer conformance (DESIGN.md §3.7): the multiplexed job service
//! must be invisible in the physics. Every suite here runs on BOTH world
//! backends — in-process threads and forked-process PEs — and holds the
//! same contracts:
//!
//! - jobs sliced over a shared [`WorldPool`] finish bitwise-identical to a
//!   solo single-engine run of the same spec;
//! - one pooled world leased through ≥10 consecutive jobs produces
//!   trajectories bitwise-identical to fresh-world runs (the reset story:
//!   `reused` leases carry no state across tenants);
//! - a job whose PE is killed mid-slice is *rescheduled* onto a fresh
//!   lease — never failed — and still finishes bitwise-identical to a
//!   fault-free run.
//!
//! Backend selection is programmatic (`EngineConfig::world_backend`), like
//! the conformance suite: the `HALOX_BACKEND` env lever is process-global
//! and this binary deliberately runs both backends side by side.

use halox::dd::DdGrid;
use halox::engine::{Engine, EngineConfig, ExchangeBackend, Thermostat, WorldBackend};
use halox::md::minimize::{steepest_descent, MinimizeOptions};
use halox::md::{EnergyReport, GrappaBuilder, System};
use halox::serve::{Job, JobService, JobSpec, JobState, Priority, ServeConfig};
use halox::shmem::{FaultKind, FaultOp, FaultPlan, FaultRule, WorldPool};
use std::sync::OnceLock;
use std::time::Duration;

const BACKENDS: [WorldBackend; 2] = [WorldBackend::Threads, WorldBackend::Procs];

fn relaxed_system() -> &'static System {
    static SYS: OnceLock<System> = OnceLock::new();
    SYS.get_or_init(|| {
        let mut sys = GrappaBuilder::new(3000).seed(41).temperature(215.0).build();
        steepest_descent(&mut sys, MinimizeOptions::default());
        sys
    })
}

fn job_config(backend: WorldBackend) -> EngineConfig {
    let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
    cfg.nstlist = 5;
    cfg.world_backend = backend;
    cfg.checkpoint = None;
    // Thermostat on: the global kinetic-energy allreduce is the reduction
    // most sensitive to any scheduling- or tenancy-dependent ordering.
    cfg.thermostat = Some(Thermostat {
        t_ref: 215.0,
        tau_ps: 0.5,
    });
    cfg
}

fn spec(name: &str, cfg: EngineConfig, steps: usize, priority: Priority) -> JobSpec {
    JobSpec {
        name: name.into(),
        system: relaxed_system().clone(),
        grid: [2, 1, 1],
        config: cfg,
        steps,
        priority,
    }
}

/// Fresh-engine, fresh-world reference run of the same spec.
fn solo_run(cfg: EngineConfig, steps: usize) -> (System, Vec<EnergyReport>) {
    let mut engine = Engine::new(relaxed_system().clone(), DdGrid::new([2, 1, 1]), cfg);
    let stats = engine.run(steps);
    (engine.system, stats.energies)
}

fn assert_bitwise(label: &str, a: &(System, Vec<EnergyReport>), b: &(System, Vec<EnergyReport>)) {
    assert_eq!(a.1.len(), b.1.len(), "{label}: step count");
    for (s, (e, f)) in a.1.iter().zip(&b.1).enumerate() {
        assert_eq!(
            e.total().to_bits(),
            f.total().to_bits(),
            "{label}: step {s} energy differs: {} vs {}",
            e.total(),
            f.total()
        );
    }
    for (i, (p, q)) in a.0.positions.iter().zip(&b.0.positions).enumerate() {
        assert!(
            p.x.to_bits() == q.x.to_bits()
                && p.y.to_bits() == q.y.to_bits()
                && p.z.to_bits() == q.z.to_bits(),
            "{label}: position {i} differs: {p:?} vs {q:?}"
        );
    }
    for (i, (p, q)) in a.0.velocities.iter().zip(&b.0.velocities).enumerate() {
        assert!(
            p.x.to_bits() == q.x.to_bits()
                && p.y.to_bits() == q.y.to_bits()
                && p.z.to_bits() == q.z.to_bits(),
            "{label}: velocity {i} differs: {p:?} vs {q:?}"
        );
    }
}

/// Several jobs of differing lengths and priorities multiplexed over a
/// 2-world pool: every one must finish `Done` and match its solo reference
/// bitwise, on both backends.
#[test]
fn multiplexed_jobs_match_solo_bitwise_on_both_backends() {
    for backend in BACKENDS {
        let mut svc = JobService::new(ServeConfig {
            pool_worlds: 2,
            workers: 2,
            slice_steps: 5,
            ..ServeConfig::default()
        });
        let cases = [
            (10, Priority::High),
            (15, Priority::Normal),
            (10, Priority::Low),
            (12, Priority::Normal),
        ];
        let handles: Vec<_> = cases
            .iter()
            .enumerate()
            .map(|(i, &(steps, priority))| {
                let s = spec(
                    &format!("{}-job-{i}", backend.label()),
                    job_config(backend),
                    steps,
                    priority,
                );
                (steps, svc.submit(s).unwrap())
            })
            .collect();
        for (steps, h) in &handles {
            let (status, result) = h.wait();
            assert_eq!(
                status.state,
                JobState::Done,
                "{}: {:?}",
                status.name,
                status.error
            );
            let result = result.unwrap();
            let solo = solo_run(job_config(backend), *steps);
            assert_bitwise(
                &format!("{} service vs solo", status.name),
                &solo,
                &(result.system, result.energies),
            );
        }
        svc.shutdown();
        let stats = svc.pool_stats();
        assert!(
            stats.built <= 2,
            "{}: pool must cap world builds: {stats:?}",
            backend.label()
        );
        assert!(
            stats.reused >= 1,
            "{}: worlds must recycle: {stats:?}",
            backend.label()
        );
    }
}

/// The reset story (satellite of the pool layer): ONE pooled world leased
/// through ten consecutive jobs — every lease after the first a reuse —
/// gives each tenant a trajectory bitwise-identical to a run on a fresh
/// world. A single leaked signal, chaos hook, or proxy setting across
/// tenants would break this on the spot.
#[test]
fn one_world_lease_cycled_through_ten_jobs_is_bitwise_clean() {
    for backend in BACKENDS {
        let pool = WorldPool::with_capacity(1);
        let reference = solo_run(job_config(backend), 10);
        for i in 0..10 {
            let mut job = Job::new(
                i,
                spec(
                    &format!("{}-tenant-{i}", backend.label()),
                    job_config(backend),
                    10,
                    Priority::Normal,
                ),
            )
            .unwrap();
            while !job.done() {
                let lease = pool.lease(job.key());
                let (lease, res) = job.advance(lease, 5);
                res.unwrap_or_else(|e| panic!("{} tenant {i}: {e}", backend.label()));
                drop(lease);
            }
            let (system, energies) = job.into_result();
            assert_bitwise(
                &format!("{} tenant {i} vs fresh world", backend.label()),
                &reference,
                &(system, energies),
            );
        }
        let stats = pool.stats();
        assert_eq!(
            stats.built,
            1,
            "{}: one world serves all ten tenants: {stats:?}",
            backend.label()
        );
        assert!(
            stats.reused >= 19,
            "{}: every lease after the first reuses it: {stats:?}",
            backend.label()
        );
        assert_eq!(stats.poisoned, 0, "{}: {stats:?}", backend.label());
    }
}

/// The fault story: a one-shot `KillPe` with the watchdog's fallback pinned
/// shut guarantees the job's first slice dies terminally. The service must
/// *reschedule* it — rewind to the frontier, poison the lease, replay on a
/// fresh world — and the job still finishes `Done`, bitwise-identical to a
/// fault-free run. On the procs backend the kill severs a real child
/// process's proxy socket.
#[test]
fn killed_pe_job_is_rescheduled_not_failed_on_both_backends() {
    for backend in BACKENDS {
        let mut cfg = job_config(backend);
        // islands(.,1): every edge proxied, so the kill always lands on the
        // parent-side proxy path; no watchdog headroom and the fallback
        // pinned to the primary make the slice unrecoverable in place.
        cfg.topology_gpus_per_node = Some(1);
        cfg.watchdog.deadline = Duration::from_millis(250);
        cfg.watchdog.max_retries = 0;
        cfg.watchdog.fallback = ExchangeBackend::NvshmemFused;
        let fault_free = {
            let mut clean = cfg.clone();
            clean.chaos = None;
            solo_run(clean, 10)
        };
        cfg.chaos = Some(FaultPlan {
            name: "serve-kill".into(),
            seed: 7,
            rules: vec![FaultRule {
                pe: Some(1),
                op: FaultOp::Any,
                after_ops: 0,
                every: None,
                kind: FaultKind::KillPe,
            }],
        });
        let mut svc = JobService::new(ServeConfig {
            pool_worlds: 2,
            workers: 2,
            slice_steps: 5,
            ..ServeConfig::default()
        });
        let handle = svc
            .submit(spec(
                &format!("{}-chaos", backend.label()),
                cfg,
                10,
                Priority::Normal,
            ))
            .unwrap();
        let (status, result) = handle.wait();
        assert_eq!(
            status.state,
            JobState::Done,
            "{}: a killed PE must cost a reschedule, not the job: {:?}",
            backend.label(),
            status.error
        );
        assert!(
            status.reschedules >= 1,
            "{}: the kill must have forced at least one reschedule: {status:?}",
            backend.label()
        );
        let result = result.unwrap();
        assert_bitwise(
            &format!("{} rescheduled vs fault-free", backend.label()),
            &fault_free,
            &(result.system, result.energies),
        );
        svc.shutdown();
        assert!(
            svc.pool_stats().poisoned >= 1,
            "{}: the failed slice's world must have been dropped: {:?}",
            backend.label(),
            svc.pool_stats()
        );
    }
}
