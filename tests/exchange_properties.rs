//! Property-based tests of the halo-exchange algorithms: for randomized
//! system sizes, seeds, grids, and transports, the concurrent fused
//! implementation must reproduce the serial reference semantics.

use halox::core::{build_contexts, exec, CommContext, FusedBuffers};
use halox::dd::{build_partition, reference_coordinate_exchange, reference_force_exchange, DdGrid};
use halox::prelude::*;
use halox::shmem::Topology;
use proptest::prelude::*;

fn arbitrary_grid() -> impl Strategy<Value = [usize; 3]> {
    prop_oneof![
        Just([2, 1, 1]),
        Just([4, 1, 1]),
        Just([2, 2, 1]),
        Just([1, 2, 2]),
        Just([2, 2, 2]),
        Just([3, 1, 1]),
        Just([3, 2, 1]),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn fused_coordinate_exchange_matches_reference(
        seed in 0u64..1000,
        dims in arbitrary_grid(),
        atoms in 4_000usize..9_000,
        gpus_per_node in 1usize..5,
    ) {
        let sys = GrappaBuilder::new(atoms).seed(seed).build();
        let grid = DdGrid::new(dims);
        let part = build_partition(&sys, &grid, 0.8);
        let ctxs = build_contexts(&part);
        let world = halox::shmem::ShmemWorld::new(
            Topology::islands(part.n_ranks(), gpus_per_node),
            CommContext::slots_needed(part.total_pulses()),
        );
        let bufs = FusedBuffers::alloc(part.n_ranks(), &ctxs[0]);

        let mut expect: Vec<Vec<Vec3>> =
            part.ranks.iter().map(|r| r.build_positions.clone()).collect();
        reference_coordinate_exchange(&part, &mut expect);

        for r in &part.ranks {
            bufs.coords.load_from(r.rank, &r.build_positions);
        }
        let b = &bufs;
        let c = &ctxs;
        let wd = halox::core::Watchdog::default();
        world.run(|pe| {
            exec::fused_pack_comm_x(pe, &c[pe.id], b, 1, &wd).unwrap();
            exec::wait_coordinate_arrivals(pe, &c[pe.id], 1, &wd).unwrap();
        });
        for r in &part.ranks {
            let got = bufs.coords.snapshot(r.rank);
            for i in 0..r.n_local() {
                prop_assert!(
                    (got[i] - expect[r.rank][i]).norm() < 1e-6,
                    "rank {} local {i}", r.rank
                );
            }
        }
    }

    #[test]
    fn fused_force_exchange_matches_reference(
        seed in 0u64..1000,
        dims in arbitrary_grid(),
        atoms in 4_000usize..9_000,
        gpus_per_node in 1usize..5,
    ) {
        let sys = GrappaBuilder::new(atoms).seed(seed).build();
        let grid = DdGrid::new(dims);
        let part = build_partition(&sys, &grid, 0.8);
        let ctxs = build_contexts(&part);
        let world = halox::shmem::ShmemWorld::new(
            Topology::islands(part.n_ranks(), gpus_per_node),
            CommContext::slots_needed(part.total_pulses()),
        );
        let bufs = FusedBuffers::alloc(part.n_ranks(), &ctxs[0]);

        let init: Vec<Vec<Vec3>> = part
            .ranks
            .iter()
            .map(|r| {
                (0..r.n_local())
                    .map(|i| Vec3::new(((r.rank + 1) * (i + 1)) as f32 * 1e-3, i as f32 * 1e-2, 1.0))
                    .collect()
            })
            .collect();
        let mut expect = init.clone();
        reference_force_exchange(&part, &mut expect);

        for r in &part.ranks {
            bufs.forces.load_from(r.rank, &init[r.rank]);
        }
        let b = &bufs;
        let c = &ctxs;
        let wd = halox::core::Watchdog::default();
        world.run(|pe| exec::fused_comm_unpack_f(pe, &c[pe.id], b, 1, &wd).unwrap());
        for r in &part.ranks {
            let got = bufs.forces.snapshot(r.rank);
            for i in 0..r.n_home {
                let w = expect[r.rank][i];
                prop_assert!(
                    (got[i] - w).norm() <= 1e-4 * w.norm().max(1.0),
                    "rank {} home {i}: {:?} vs {w:?}", r.rank, got[i]
                );
            }
        }
    }

    #[test]
    fn fused_exchange_correct_under_adversarial_proxy_timing(
        seed in 0u64..500,
        atoms in 4_000usize..7_000,
        max_delay_us in 1u64..200,
    ) {
        // Randomized proxy delays reorder message application across pulses;
        // the per-pulse signal protocol must stay correct regardless.
        use halox::shmem::ProxyConfig;
        let sys = GrappaBuilder::new(atoms).seed(seed).build();
        let grid = DdGrid::new([2, 2, 1]);
        let part = build_partition(&sys, &grid, 0.8);
        let ctxs = build_contexts(&part);
        let world = halox::shmem::ShmemWorld::new(
            Topology::islands(part.n_ranks(), 1), // everything crosses "IB"
            CommContext::slots_needed(part.total_pulses()),
        )
        .with_proxy_config(ProxyConfig {
            injected_delay: None,
            random_delay: Some((seed.wrapping_mul(0x9E3779B9) | 1, max_delay_us)),
        });
        let bufs = FusedBuffers::alloc(part.n_ranks(), &ctxs[0]);
        let mut expect: Vec<Vec<Vec3>> =
            part.ranks.iter().map(|r| r.build_positions.clone()).collect();
        reference_coordinate_exchange(&part, &mut expect);
        for r in &part.ranks {
            bufs.coords.load_from(r.rank, &r.build_positions);
        }
        let b = &bufs;
        let c = &ctxs;
        let wd = halox::core::Watchdog::default();
        world.run(|pe| {
            exec::fused_pack_comm_x(pe, &c[pe.id], b, 1, &wd).unwrap();
            exec::wait_coordinate_arrivals(pe, &c[pe.id], 1, &wd).unwrap();
            exec::fused_comm_unpack_f(pe, &c[pe.id], b, 1, &wd).unwrap();
        });
        for r in &part.ranks {
            let got = bufs.coords.snapshot(r.rank);
            for i in 0..r.n_local() {
                prop_assert!((got[i] - expect[r.rank][i]).norm() < 1e-6);
            }
        }
    }

    #[test]
    fn partition_is_exact_cover(
        seed in 0u64..1000,
        dims in arbitrary_grid(),
        atoms in 3_000usize..8_000,
    ) {
        let sys = GrappaBuilder::new(atoms).seed(seed).build();
        let part = build_partition(&sys, &DdGrid::new(dims), 0.8);
        let mut owned = vec![0u8; sys.n_atoms()];
        for r in &part.ranks {
            for &g in &r.global_ids[..r.n_home] {
                owned[g as usize] += 1;
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1));
        // Staged pulses reach all forward neighbours with sum(np) steps.
        let expected_pulses: usize = part.grid.comm_dims().len();
        prop_assert!(part.total_pulses() >= expected_pulses);
    }

    #[test]
    fn dep_offset_is_stable_partition(
        seed in 0u64..1000,
        dims in prop_oneof![Just([2, 2, 1]), Just([2, 2, 2]), Just([3, 2, 1])],
        atoms in 5_000usize..9_000,
    ) {
        let sys = GrappaBuilder::new(atoms).seed(seed).build();
        let part = build_partition(&sys, &DdGrid::new(dims), 0.8);
        for r in &part.ranks {
            for pd in &r.pulses {
                for &i in pd.independent() {
                    prop_assert!((i as usize) < r.n_home);
                }
                let mut last = None;
                for &i in pd.dependent() {
                    prop_assert!((i as usize) >= r.n_home);
                    // Dependent entries arrive in local-index (arrival) order.
                    if let Some(l) = last {
                        prop_assert!(i > l);
                    }
                    last = Some(i);
                }
            }
        }
    }
}
