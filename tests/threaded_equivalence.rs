//! Concurrency stress suite for the two executors (DESIGN.md §3.3): the
//! threaded per-PE runner must produce trajectories **bitwise identical**
//! to the serial reference driver — same positions, velocities and every
//! energy term to the last bit — across transports, topologies and
//! integrators, with the global-collective thermostat enabled (the
//! schedule-sensitive path). Under chaos the threaded executor must never
//! deadlock: every run ends inside the watchdog ladder as completed,
//! retried or downgraded, and a peer that dies mid-collective surfaces a
//! bounded `CollectiveTimeout` error instead of a hang.
//!
//! CI runs this file with `--test-threads=1` so each case owns the host's
//! cores; `HALOX_CHAOS_SEED` selects the fault-plan seed as in the chaos
//! suite.

use halox::dd::DdGrid;
use halox::engine::{
    Engine, EngineConfig, ExchangeBackend, Integrator, NbKernel, RunMode, RunStats, Thermostat,
};
use halox::md::minimize::{steepest_descent, MinimizeOptions};
use halox::md::{GrappaBuilder, System};
use halox::shmem::{FaultKind, FaultPlan};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_millis(200);
const STALL: Duration = Duration::from_millis(400);

fn chaos_seed() -> u64 {
    std::env::var("HALOX_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn relaxed_system(seed: u64, atoms: usize) -> System {
    let mut sys = GrappaBuilder::new(atoms)
        .seed(seed)
        .temperature(220.0)
        .build();
    steepest_descent(&mut sys, MinimizeOptions::default());
    sys
}

fn config(backend: ExchangeBackend, gpus_per_node: Option<usize>, mode: RunMode) -> EngineConfig {
    let mut cfg = EngineConfig::new(backend);
    cfg.nstlist = 5;
    cfg.run_mode = mode;
    cfg.topology_gpus_per_node = gpus_per_node;
    cfg.watchdog.deadline = DEADLINE;
    // Thermostat on: exercises the allreduce over kinetic energy, the one
    // place a schedule-dependent reduction order would break bitwise
    // identity between executors.
    cfg.thermostat = Some(Thermostat {
        t_ref: 220.0,
        tau_ps: 0.5,
    });
    cfg
}

fn run(sys: &System, grid: [usize; 3], cfg: EngineConfig, steps: usize) -> (System, RunStats) {
    let mut engine = Engine::new(sys.clone(), DdGrid::new(grid), cfg);
    let stats = engine.run(steps);
    (engine.system, stats)
}

/// Panics with a diagnostic if the two runs differ in even one bit.
fn assert_bitwise(label: &str, a: &(System, RunStats), b: &(System, RunStats)) {
    let bit3 = |p: &halox::md::Vec3, q: &halox::md::Vec3| {
        p.x.to_bits() == q.x.to_bits()
            && p.y.to_bits() == q.y.to_bits()
            && p.z.to_bits() == q.z.to_bits()
    };
    for (i, (p, q)) in a.0.positions.iter().zip(&b.0.positions).enumerate() {
        assert!(bit3(p, q), "{label}: position {i} differs: {p:?} vs {q:?}");
    }
    for (i, (p, q)) in a.0.velocities.iter().zip(&b.0.velocities).enumerate() {
        assert!(bit3(p, q), "{label}: velocity {i} differs: {p:?} vs {q:?}");
    }
    assert_eq!(
        a.1.energies.len(),
        b.1.energies.len(),
        "{label}: energy series length"
    );
    for (s, (x, y)) in a.1.energies.iter().zip(&b.1.energies).enumerate() {
        let same = x.nonbonded.to_bits() == y.nonbonded.to_bits()
            && x.bonds.to_bits() == y.bonds.to_bits()
            && x.angles.to_bits() == y.angles.to_bits()
            && x.kinetic.to_bits() == y.kinetic.to_bits()
            && x.virial.to_bits() == y.virial.to_bits();
        assert!(same, "{label}: energies differ at step {s}: {x:?} vs {y:?}");
    }
}

#[test]
fn threaded_matches_serial_bitwise_across_transports() {
    // One serial reference trajectory; every threaded transport/topology
    // must reproduce it bit-for-bit. This also proves the transports are
    // bitwise interchangeable with each other.
    let sys = relaxed_system(401, 3000);
    let steps = 10;
    let serial = run(
        &sys,
        [2, 2, 1],
        config(ExchangeBackend::NvshmemFused, None, RunMode::Serial),
        steps,
    );
    let scenarios: [(ExchangeBackend, Option<usize>); 4] = [
        (ExchangeBackend::NvshmemFused, None), // all-NVLink direct stores
        (ExchangeBackend::NvshmemFused, Some(2)), // mixed NVLink/proxied-IB islands
        (ExchangeBackend::ThreadMpi, None),
        (ExchangeBackend::Mpi, None),
    ];
    for (backend, gpus) in scenarios {
        let threaded = run(
            &sys,
            [2, 2, 1],
            config(backend, gpus, RunMode::Threaded),
            steps,
        );
        let label = format!("{:?}/gpus_per_node={gpus:?}", backend);
        assert_bitwise(&label, &serial, &threaded);
        assert_eq!(threaded.1.retries, 0, "{label}: clean run must not retry");
        assert!(threaded.1.downgrades.is_empty(), "{label}: no downgrade");
    }
}

#[test]
fn kernel_and_overlap_choices_stay_bitwise_between_executors() {
    // The non-bonded kernel matrix (DESIGN.md §3.4): for both kernels, the
    // serial driver and the threaded executor agree to the bit, and the
    // overlap window (local tiles evaluated before halo arrivals) is
    // bitwise inert — same tiles, same fold order, only wall-clock moves.
    let sys = relaxed_system(406, 3000);
    let steps = 10;
    for kernel in [NbKernel::Scalar, NbKernel::Cluster] {
        let mk = |mode, overlap| {
            let mut cfg = config(ExchangeBackend::NvshmemFused, Some(2), mode);
            cfg.nb_kernel = kernel;
            cfg.nb_overlap = overlap;
            cfg
        };
        let serial = run(&sys, [2, 2, 1], mk(RunMode::Serial, true), steps);
        let on = run(&sys, [2, 2, 1], mk(RunMode::Threaded, true), steps);
        let off = run(&sys, [2, 2, 1], mk(RunMode::Threaded, false), steps);
        assert_bitwise(&format!("{} overlap-on", kernel.label()), &serial, &on);
        assert_bitwise(&format!("{} overlap-off", kernel.label()), &serial, &off);
    }
}

#[test]
fn threaded_matches_serial_bitwise_velocity_verlet() {
    // Velocity Verlet runs an extra force round per segment with its own
    // signal sequencing; it must stay bitwise-deterministic too.
    let sys = relaxed_system(402, 2400);
    let mk = |mode| {
        let mut cfg = config(ExchangeBackend::NvshmemFused, Some(2), mode);
        cfg.integrator = Integrator::VelocityVerlet;
        cfg
    };
    let serial = run(&sys, [2, 2, 1], mk(RunMode::Serial), 8);
    let threaded = run(&sys, [2, 2, 1], mk(RunMode::Threaded), 8);
    assert_bitwise("velocity-verlet", &serial, &threaded);
}

#[test]
fn eight_pe_stress_stays_bitwise_with_link_latency() {
    // Widest topology in the suite: 8 PE threads plus proxy threads on a
    // two-island fabric, with modeled inter-node latency in flight while
    // compute proceeds — maximum schedule jitter between runs. Still one
    // answer, to the bit.
    let sys = relaxed_system(403, 4000);
    let steps = 15;
    let mk = |mode| {
        let mut cfg = config(ExchangeBackend::NvshmemFused, Some(4), mode);
        cfg.link_delay_us = 200;
        // No faults are injected here, so the deadline is purely a hang
        // backstop; eight PE threads timeslicing one core under the
        // (heavier) cluster kernel can legitimately skew a collective past
        // the suite's tight default in unoptimized builds.
        cfg.watchdog.deadline = Duration::from_secs(2);
        cfg
    };
    let serial = run(&sys, [4, 2, 1], mk(RunMode::Serial), steps);
    let threaded = run(&sys, [4, 2, 1], mk(RunMode::Threaded), steps);
    assert_bitwise("8-PE islands(8,4)", &serial, &threaded);
    assert_eq!(threaded.1.energies.len(), steps);
    assert_eq!(threaded.1.retries, 0, "clean stress run must not retry");
}

#[test]
fn chaos_runs_never_deadlock_and_clean_survivors_stay_bitwise() {
    // Every built-in fault plan, on both signal-driven transports, with the
    // thermostat collective in the loop. Each run must end inside the
    // watchdog ladder (complete / retried / downgraded — never hang; the
    // harness-level guarantee is the CI job timeout, the in-process one is
    // that every wait is deadline-bounded). Crash plans are excluded here:
    // a dead PE can never rejoin a global collective, which is exactly the
    // graceful-failure case covered by the test below.
    let sys = relaxed_system(404, 3000);
    let serial = run(
        &sys,
        [2, 2, 1],
        config(ExchangeBackend::NvshmemFused, None, RunMode::Serial),
        12,
    );
    for (backend, gpus) in [
        (ExchangeBackend::NvshmemFused, Some(2)),
        (ExchangeBackend::ThreadMpi, None),
    ] {
        for plan in FaultPlan::builtins(chaos_seed(), 4, STALL) {
            if plan
                .rules
                .iter()
                .any(|r| matches!(r.kind, FaultKind::CrashPe))
            {
                continue;
            }
            let mut cfg = config(backend, gpus, RunMode::Threaded);
            cfg.chaos = Some(plan.clone());
            let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
            let stats = engine.try_run(12).unwrap_or_else(|e| {
                panic!(
                    "plan {:?} on {backend:?}: even the fallback failed: {e}",
                    plan.name
                )
            });
            assert_eq!(stats.energies.len(), 12, "plan {:?}: incomplete", plan.name);
            if stats.retries == 0 && stats.downgrades.is_empty() {
                // Faults the transport absorbed in-band may cost time,
                // never physics — absorbed runs stay bitwise identical.
                assert_bitwise(
                    &format!("chaos {:?} on {backend:?}", plan.name),
                    &serial,
                    &(engine.system, stats),
                );
            }
        }
    }
}

#[test]
fn crashed_peer_with_thermostat_recovers_instead_of_hanging() {
    // The regression this PR fixes. A crash plan kills a PE's *deliveries*:
    // its neighbours stall in the exchange wait while the unaffected PEs
    // sail on to the kinetic-energy allreduce and park there waiting for
    // the stalled ones. With the old unbounded collectives those parked
    // PEs could never be reclaimed — the watchdog diagnosed the exchange
    // stall but the segment never unwound, and crash-plus-thermostat
    // deadlocked forever (hence the old rule "chaos runs must not enable
    // the thermostat"). With deadline-bounded collectives every parked PE
    // times out, the segment unwinds, and the ladder downgrades to the
    // two-sided fallback and completes — in bounded wall time.
    let sys = relaxed_system(405, 2400);
    let crash_plan = FaultPlan::builtins(chaos_seed(), 4, STALL)
        .into_iter()
        .find(|p| p.rules.iter().any(|r| matches!(r.kind, FaultKind::CrashPe)))
        .expect("builtins include a crash plan");
    let mut cfg = config(ExchangeBackend::NvshmemFused, Some(2), RunMode::Threaded);
    cfg.chaos = Some(crash_plan);
    cfg.watchdog.max_retries = 0; // shortest path through the ladder
    let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
    let armed = Instant::now();
    let stats = engine
        .try_run(20)
        .expect("crash with thermostat must downgrade and complete, not hang");
    let elapsed = armed.elapsed();
    assert_eq!(stats.energies.len(), 20);
    assert!(
        !stats.downgrades.is_empty(),
        "a crashed PE must force a transport downgrade"
    );
    assert!(
        !stats.stall_reports.is_empty(),
        "the stall must be diagnosed, not silently absorbed"
    );
    assert!(
        elapsed < Duration::from_secs(60),
        "recovery must be bounded by the watchdog ladder, took {elapsed:?}"
    );
}
