//! Cross-crate integration: the fused GPU-initiated halo exchange must make
//! multi-rank MD indistinguishable from single-rank MD, for every grid
//! dimensionality and transport mix.

use halox::prelude::*;

fn relaxed(n: usize, seed: u64) -> System {
    let mut sys = GrappaBuilder::new(n).seed(seed).temperature(200.0).build();
    steepest_descent(&mut sys, MinimizeOptions::default());
    sys
}

fn max_deviation(a: &System, b: &System) -> f32 {
    a.positions
        .iter()
        .zip(&b.positions)
        .map(|(p, q)| a.pbc.dist2(*p, *q).sqrt())
        .fold(0.0, f32::max)
}

fn run(
    sys: &System,
    dims: [usize; 3],
    backend: ExchangeBackend,
    gpus_per_node: Option<usize>,
    steps: usize,
) -> System {
    let mut cfg = EngineConfig::new(backend);
    cfg.nstlist = 5;
    cfg.topology_gpus_per_node = gpus_per_node;
    let mut engine = Engine::new(sys.clone(), DdGrid::new(dims), cfg);
    engine.run(steps);
    engine.system
}

#[test]
fn one_dimensional_decomposition_matches_reference() {
    let sys = relaxed(3000, 501);
    let mut reference = ReferenceSimulation::new(sys.clone(), 0.7, 0.1);
    for _ in 0..10 {
        reference.step(0.0005);
    }
    let dd = run(&sys, [4, 1, 1], ExchangeBackend::NvshmemFused, None, 10);
    let dev = max_deviation(&dd, &reference.system);
    assert!(dev < 2e-4, "1D deviation {dev} nm");
}

#[test]
fn three_dimensional_decomposition_matches_reference() {
    let sys = relaxed(12_000, 502);
    let mut reference = ReferenceSimulation::new(sys.clone(), 0.7, 0.1);
    for _ in 0..8 {
        reference.step(0.0005);
    }
    let dd = run(&sys, [2, 2, 2], ExchangeBackend::NvshmemFused, None, 8);
    let dev = max_deviation(&dd, &reference.system);
    assert!(dev < 2e-4, "3D deviation {dev} nm");
}

#[test]
fn mixed_transport_matches_all_nvlink() {
    // 8 ranks in 2 "nodes" of 4: x pulses cross the network.
    let sys = relaxed(12_000, 503);
    let a = run(&sys, [2, 2, 2], ExchangeBackend::NvshmemFused, None, 8);
    let b = run(&sys, [2, 2, 2], ExchangeBackend::NvshmemFused, Some(4), 8);
    let dev = max_deviation(&a, &b);
    assert!(dev < 2e-4, "transport deviation {dev} nm");
}

#[test]
fn backends_agree_on_3d_grid() {
    let sys = relaxed(12_000, 504);
    let a = run(&sys, [2, 2, 2], ExchangeBackend::Mpi, None, 8);
    let b = run(&sys, [2, 2, 2], ExchangeBackend::NvshmemFused, Some(2), 8);
    let dev = max_deviation(&a, &b);
    assert!(dev < 2e-4, "backend deviation {dev} nm");
}

#[test]
fn energy_conserved_under_decomposition() {
    // NVE drift of the decomposed run must match the reference's order of
    // magnitude (the exchange must not create or destroy energy).
    let sys = relaxed(3000, 505);
    let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
    cfg.nstlist = 10;
    let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
    let stats = engine.run(40);
    let e: Vec<f64> = stats.energies.iter().map(|e| e.total()).collect();
    let e0 = e[0];
    for (s, &ei) in e.iter().enumerate() {
        assert!(ei.is_finite());
        assert!(
            ((ei - e0) / e0.abs().max(1.0)).abs() < 0.3,
            "step {s}: energy excursion from {e0} to {ei}"
        );
    }
}

#[test]
fn repartitioning_preserves_atom_count_and_molecules() {
    let sys = relaxed(3000, 506);
    let n = sys.n_atoms();
    let mut cfg = EngineConfig::new(ExchangeBackend::NvshmemFused);
    cfg.nstlist = 3; // force several repartitions
    let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
    engine.run(12);
    assert_eq!(engine.system.n_atoms(), n);
    // Molecules must stay intact: bond lengths bounded.
    for b in &engine.system.bonds {
        let d = engine
            .system
            .pbc
            .dist2(
                engine.system.positions[b.i as usize],
                engine.system.positions[b.j as usize],
            )
            .sqrt();
        assert!(d < 3.0 * b.r0, "bond {b:?} stretched to {d} nm");
    }
}
