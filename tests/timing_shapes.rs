//! Integration tests pinning the paper's headline *shapes* on the timing
//! plane: who wins, by roughly what factor, and where the crossovers fall.
//! (EXPERIMENTS.md records the full paper-vs-measured comparison.)

use halox::core::sched::{simulate, Backend, ScheduleInput};
use halox::prelude::*;

fn ns_day(machine: &MachineModel, atoms: usize, dims: [usize; 3], backend: Backend) -> f64 {
    let model = WorkloadModel::grappa(atoms, 1.05, DdGrid::new(dims));
    let input = ScheduleInput::from_workload(machine.clone(), &model);
    simulate(backend, &input, 8, 3).ns_per_day(2.0)
}

#[test]
fn headline_45k_intranode_speedup() {
    // Paper Fig 3: 45k @ 4 GPUs: 1649 vs 1126 ns/day (+46%).
    let m = MachineModel::dgx_h100();
    let mpi = ns_day(&m, 45_000, [4, 1, 1], Backend::Mpi);
    let nvs = ns_day(&m, 45_000, [4, 1, 1], Backend::Nvshmem);
    let ratio = nvs / mpi;
    assert!(
        (1.25..1.65).contains(&ratio),
        "speedup {ratio} (paper 1.46)"
    );
    assert!(
        (mpi - 1126.0).abs() / 1126.0 < 0.15,
        "MPI {mpi} (paper 1126)"
    );
    assert!(
        (nvs - 1649.0).abs() / 1649.0 < 0.15,
        "NVSHMEM {nvs} (paper 1649)"
    );
}

#[test]
fn convergence_at_360k_intranode() {
    // Paper Fig 3: 360k @ 4 GPUs: performance converges (671 vs 670).
    let m = MachineModel::dgx_h100();
    let mpi = ns_day(&m, 360_000, [4, 1, 1], Backend::Mpi);
    let nvs = ns_day(&m, 360_000, [4, 1, 1], Backend::Nvshmem);
    let ratio = nvs / mpi;
    assert!((0.95..1.10).contains(&ratio), "ratio {ratio} (paper ~1.00)");
}

#[test]
fn eight_gpu_advantages_match_paper() {
    // Paper Fig 3: 180k @ 8: +28%; 360k @ 8: +17%.
    let m = MachineModel::dgx_h100();
    let r180 = ns_day(&m, 180_000, [8, 1, 1], Backend::Nvshmem)
        / ns_day(&m, 180_000, [8, 1, 1], Backend::Mpi);
    let r360 = ns_day(&m, 360_000, [4, 2, 1], Backend::Nvshmem)
        / ns_day(&m, 360_000, [4, 2, 1], Backend::Mpi);
    assert!(
        (1.10..1.40).contains(&r180),
        "180k@8 ratio {r180} (paper 1.28)"
    );
    assert!(
        (1.05..1.30).contains(&r360),
        "360k@8 ratio {r360} (paper 1.17)"
    );
}

#[test]
fn multinode_advantage_grows_with_scale() {
    // Paper Fig 5: 5760k: 1.3x at 128 nodes; small or reversed at 2 nodes.
    let m = MachineModel::eos();
    let low = ns_day(&m, 5_760_000, [8, 1, 1], Backend::Nvshmem)
        / ns_day(&m, 5_760_000, [8, 1, 1], Backend::Mpi);
    let high = ns_day(&m, 5_760_000, [16, 8, 4], Backend::Nvshmem)
        / ns_day(&m, 5_760_000, [16, 8, 4], Backend::Mpi);
    assert!(low < 1.05, "2-node ratio {low} should be ~1 or below");
    assert!(
        (1.15..1.45).contains(&high),
        "128-node ratio {high} (paper ~1.3)"
    );
    assert!(high > low);
}

#[test]
fn mpi_marginally_wins_compute_bound_low_node_counts() {
    // Paper §6.2: "for larger systems at low node counts, MPI marginally
    // outperforms NVSHMEM" (1-3%), from NVSHMEM's SM-resource sharing.
    let m = MachineModel::eos();
    let mpi = ns_day(&m, 23_040_000, [4, 4, 2], Backend::Mpi);
    let nvs = ns_day(&m, 23_040_000, [4, 4, 2], Backend::Nvshmem);
    assert!(mpi > nvs, "MPI {mpi} must edge out NVSHMEM {nvs} here");
    assert!(
        mpi / nvs < 1.10,
        "MPI edge must stay marginal: {}",
        mpi / nvs
    );
}

#[test]
fn gb200_parallel_efficiency_ladder() {
    // Paper Fig 4: 720k: 84% @2 nodes, 55% @4, 32% @8 (4 GPUs/node);
    // 1440k scales better than 720k at every node count.
    let m = MachineModel::gb200_nvl72();
    let eff = |atoms: usize, dims_1: [usize; 3], dims_n: [usize; 3], nodes: f64| {
        ns_day(&m, atoms, dims_n, Backend::Nvshmem)
            / (ns_day(&m, atoms, dims_1, Backend::Nvshmem) * nodes)
    };
    let e720_2 = eff(720_000, [4, 1, 1], [8, 1, 1], 2.0);
    let e720_8 = eff(720_000, [4, 1, 1], [8, 4, 1], 8.0);
    let e1440_8 = eff(1_440_000, [4, 1, 1], [8, 4, 1], 8.0);
    assert!(e720_2 > e720_8, "efficiency must fall with scale");
    assert!(
        (0.2..0.55).contains(&e720_8),
        "720k@8 nodes eff {e720_8} (paper 0.32)"
    );
    assert!(
        e1440_8 > e720_8,
        "larger system scales better (paper 48% vs 32%)"
    );
}

#[test]
fn nonlocal_work_progression_fig7_fig8() {
    // Fig 7/8: non-local work grows with DD dimensionality; the NVSHMEM
    // advantage in non-local time grows too (28us at 2D, 50-60us at 3D for
    // 90k atoms/GPU).
    let m = MachineModel::eos();
    let metrics = |atoms: usize, dims: [usize; 3], b: Backend| {
        let model = WorkloadModel::grappa(atoms, 1.05, DdGrid::new(dims));
        let input = ScheduleInput::from_workload(m.clone(), &model);
        simulate(b, &input, 8, 3)
    };
    let configs = [
        (720_000usize, [8, 1, 1]),
        (1_440_000, [8, 2, 1]),
        (2_880_000, [8, 2, 2]),
    ];
    let mut prev_gap = 0.0;
    for (atoms, dims) in configs {
        let mpi = metrics(atoms, dims, Backend::Mpi);
        let nvs = metrics(atoms, dims, Backend::Nvshmem);
        let gap = mpi.nonlocal_work_ns - nvs.nonlocal_work_ns;
        assert!(gap > 0.0, "NVSHMEM non-local must be shorter at {dims:?}");
        assert!(
            gap >= prev_gap * 0.9,
            "gap should grow with dims: {gap} after {prev_gap}"
        );
        prev_gap = gap;
        // SM interference: NVSHMEM local work is slower.
        assert!(nvs.local_work_ns > mpi.local_work_ns);
    }
    // 3D gap in the paper's 50-60us band (ours in ns).
    assert!(
        (30_000.0..80_000.0).contains(&prev_gap),
        "3D gap {prev_gap} ns"
    );
}

#[test]
fn prune_stream_ablation_within_paper_band() {
    // §5.4: up to 10% improvement, for both backends.
    let m = MachineModel::dgx_h100();
    let model = WorkloadModel::grappa(180_000, 1.05, DdGrid::new([4, 1, 1]));
    for backend in [Backend::Mpi, Backend::Nvshmem] {
        let mut input = ScheduleInput::from_workload(m.clone(), &model);
        input.prune_stream_opt = true;
        let on = simulate(backend, &input, 8, 3).time_per_step_ns;
        input.prune_stream_opt = false;
        let off = simulate(backend, &input, 8, 3).time_per_step_ns;
        let gain = off / on;
        assert!(gain > 1.0, "{backend:?}: prune streams must help");
        assert!(gain < 1.15, "{backend:?}: gain {gain} exceeds paper band");
    }
}

#[test]
fn proxy_contention_degrades_multinode_performance() {
    // §5.5: a proxy thread pinned to a busy core causes large slowdowns.
    let mut m = MachineModel::eos();
    let base = ns_day(&m, 720_000, [8, 1, 1], Backend::Nvshmem);
    m.proxy_contention = 50.0;
    let contended = ns_day(&m, 720_000, [8, 1, 1], Backend::Nvshmem);
    assert!(
        contended < base * 0.9,
        "contention must hurt: {base} -> {contended}"
    );
}
