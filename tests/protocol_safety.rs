//! Adversarial-timing regression tests for the cross-step signal protocol.
//!
//! The hazard under test: a driver that repeats *force-only* exchanges
//! (`load_from` + `fused_comm_unpack_f` each step) republishes its whole
//! symmetric force buffer every step. Before the completion-ack protocol
//! (`force_ack_slot` / `coord_ack_slot`, DESIGN.md §3) nothing ordered step
//! `N+1`'s overwrite after a neighbour's step-`N` read of the same region,
//! so a fast producer could clobber data a slow consumer was still getting.
//! These tests drive exactly that pattern with deterministic per-(pe, step)
//! jitter and randomized proxy delays, verify every step against the serial
//! reference, and replay the recorded event stream through the protocol
//! checker.

use halox::core::{build_contexts, exec, CommContext, FusedBuffers};
use halox::dd::{build_partition, reference_force_exchange, DdGrid, DdPartition};
use halox::engine::{Engine, EngineConfig, ExchangeBackend};
use halox::md::minimize::{steepest_descent, MinimizeOptions};
use halox::md::{GrappaBuilder, System, Vec3};
use halox::shmem::{ProxyConfig, ShmemWorld, Topology};
use halox::trace::{check, record_opt, Payload, Recorder, Region, Violation};
use std::sync::Arc;
use std::time::Duration;

/// Deterministic per-(pe, step) jitter in [0, max_us): desynchronizes the
/// PE ring so fast producers run ahead of slow consumers. Correctness must
/// not depend on relative thread timing.
fn jitter_us(pe: usize, step: u64, max_us: u64) -> u64 {
    let mut x = (pe as u64 + 1)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(step.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x % max_us
}

fn test_partition(seed: u64) -> (System, DdPartition) {
    let sys = GrappaBuilder::new(4000).seed(seed).build();
    let part = build_partition(&sys, &DdGrid::new([4, 1, 1]), 0.8);
    (sys, part)
}

/// Step-dependent pseudo-forces: every step republishes different values,
/// so consuming a stale (or prematurely overwritten) region is caught by
/// the per-step reference comparison.
fn step_forces(part: &DdPartition, step: u64) -> Vec<Vec<Vec3>> {
    part.ranks
        .iter()
        .map(|r| {
            (0..r.n_local())
                .map(|i| {
                    Vec3::new(
                        (step as f32) * 0.5 + (r.rank * 1000 + i) as f32 * 1e-3,
                        (step as f32) - i as f32 * 1e-3,
                        1.0 + (step % 7) as f32,
                    )
                })
                .collect()
        })
        .collect()
}

/// Drive `steps` force-only exchange rounds on `world`, checking every rank
/// against the serial reference each step, then replay the recorded events
/// through the protocol checker.
fn force_only_loop(part: &DdPartition, world: ShmemWorld, steps: u64, jitter_max_us: u64) {
    let ctxs = build_contexts(part);
    let rec = Arc::new(Recorder::new());
    let world = world.with_trace(Arc::clone(&rec));
    let bufs = FusedBuffers::alloc(part.n_ranks(), &ctxs[0]);

    // Per-step inputs and expected outputs, precomputed serially.
    let inits: Vec<Vec<Vec<Vec3>>> = (1..=steps).map(|s| step_forces(part, s)).collect();
    let expects: Vec<Vec<Vec<Vec3>>> = inits
        .iter()
        .map(|init| {
            let mut e = init.clone();
            reference_force_exchange(part, &mut e);
            e
        })
        .collect();

    let b = &bufs;
    let c = &ctxs;
    let inits_ref = &inits;
    let expects_ref = &expects;
    let wd = halox::core::Watchdog::default();
    let wd = &wd;
    world.run(|pe| {
        let ctx = &c[pe.id];
        let n_local = ctx.n_local;
        let n_home = ctx.n_home;
        for step in 1..=steps {
            std::thread::sleep(Duration::from_micros(jitter_us(pe.id, step, jitter_max_us)));
            // Republish the whole force buffer — the cross-step overwrite
            // the ack protocol must order after all step-(N-1) reads.
            record_opt(
                pe.trace(),
                ctx.rank as u32,
                Payload::RegionWrite {
                    owner: ctx.rank as u32,
                    region: Region::Forces,
                    lo: 0,
                    hi: n_local as u32,
                },
            );
            b.forces
                .load_from(ctx.rank, &inits_ref[step as usize - 1][ctx.rank]);
            exec::fused_comm_unpack_f(pe, ctx, b, step, wd).unwrap();
            let got = b.forces.snapshot(ctx.rank);
            let expect = &expects_ref[step as usize - 1][ctx.rank];
            for i in 0..n_home {
                let w = expect[i];
                assert!(
                    (got[i] - w).norm() <= 1e-4 * w.norm().max(1.0),
                    "rank {} step {step} home atom {i}: got {:?}, want {w:?}",
                    ctx.rank,
                    got[i]
                );
            }
        }
    });

    let trace = rec.drain();
    assert!(trace.events.len() as u64 >= steps * part.n_ranks() as u64);
    let report = check(&trace);
    assert!(report.is_clean(), "protocol violations:\n{report}");
}

/// NVLink transport: receiver-driven gets read the producer's force buffer
/// in place, so a producer racing ahead one step corrupts the consumer's
/// sums. ≥20 steps of jittered repetition must stay bit-correct per step.
#[test]
fn force_only_loop_nvlink_survives_adversarial_jitter() {
    let (_sys, part) = test_partition(211);
    let world = ShmemWorld::new(
        Topology::all_nvlink(part.n_ranks()),
        CommContext::slots_needed(part.total_pulses()),
    );
    force_only_loop(&part, world, 24, 800);
}

/// IB transport: the producer's proxied put lands in the consumer's staging
/// buffer; with randomized proxy delays, step N+1's put can be serviced
/// while the consumer still unpacks step N unless the ack fence holds it
/// back.
#[test]
fn force_only_loop_ib_survives_random_proxy_delay() {
    let (_sys, part) = test_partition(212);
    let world = ShmemWorld::new(
        Topology::islands(part.n_ranks(), 1),
        CommContext::slots_needed(part.total_pulses()),
    )
    .with_proxy_config(ProxyConfig {
        random_delay: Some((0xc0ff_ee11, 500)),
        ..ProxyConfig::default()
    });
    force_only_loop(&part, world, 20, 400);
}

/// Full engine loop (coordinates + forces + acks) with the recorder
/// attached: the checker must report zero violations on both symmetric-heap
/// transports.
#[test]
fn engine_trace_is_checker_clean_on_both_transports() {
    let mut sys = GrappaBuilder::new(3000)
        .seed(213)
        .temperature(200.0)
        .build();
    steepest_descent(&mut sys, MinimizeOptions::default());
    for (backend, gpus_per_node) in [
        (ExchangeBackend::NvshmemFused, Some(2)), // mixed NVLink + IB proxy
        (ExchangeBackend::ThreadMpi, None),       // all-NVLink direct copies
    ] {
        let rec = Arc::new(Recorder::new());
        let mut cfg = EngineConfig::new(backend);
        cfg.nstlist = 5;
        cfg.topology_gpus_per_node = gpus_per_node;
        cfg.trace = Some(Arc::clone(&rec));
        let mut engine = Engine::new(sys.clone(), DdGrid::new([4, 1, 1]), cfg);
        engine.run(10);
        let trace = rec.drain();
        assert!(!trace.events.is_empty(), "{backend:?}: no events recorded");
        assert_eq!(trace.dropped, 0, "{backend:?}: recorder overflowed");
        let report = check(&trace);
        assert!(
            report.is_clean(),
            "{backend:?} protocol violations:\n{report}"
        );
    }
}

/// Negative control: replaying the *pre-fix* pattern — publish, signal,
/// remote read, then republish with no completion ack — must be flagged.
/// The checker works on recorded orderings, so the verdict is deterministic
/// regardless of how the threads actually interleaved.
#[test]
fn checker_flags_unfenced_cross_step_reuse() {
    let rec = Arc::new(Recorder::new());
    let world = ShmemWorld::new(Topology::all_nvlink(2), 1).with_trace(Arc::clone(&rec));
    world.run(|pe| {
        if pe.id == 0 {
            record_opt(
                pe.trace(),
                0,
                Payload::RegionWrite {
                    owner: 0,
                    region: Region::Forces,
                    lo: 0,
                    hi: 8,
                },
            );
            pe.signal(1, 0, 1);
            // Step 2 republishes immediately: no ack edge orders this after
            // PE 1's read.
            record_opt(
                pe.trace(),
                0,
                Payload::RegionWrite {
                    owner: 0,
                    region: Region::Forces,
                    lo: 0,
                    hi: 8,
                },
            );
        } else {
            pe.wait_signal(0, 1);
            record_opt(
                pe.trace(),
                1,
                Payload::RegionRead {
                    owner: 0,
                    region: Region::Forces,
                    lo: 0,
                    hi: 8,
                },
            );
        }
    });
    let report = check(&rec.drain());
    assert!(!report.is_clean(), "unfenced reuse must be flagged");
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::RacingRegionAccess { .. })),
        "expected RacingRegionAccess, got: {report}"
    );
}
