//! Backend conformance suite (DESIGN.md §3.5): the cross-process `procs`
//! world — forked PEs over a `memfd` symmetric heap with socket proxies —
//! must be observationally equivalent to the in-process `threads` world.
//! Every suite here runs the same scenario on both backends and compares
//! outcomes bitwise: the signal protocol (direct stores and proxied puts),
//! the deterministic collectives, world reset/reuse, and full engine
//! trajectories, which must be identical across serial ≡ threaded ≡ procs
//! on every transport at 2 and 4 PEs. Fault paths conform too: a chaos
//! plan (seed via `HALOX_CHAOS_SEED`, as in the chaos suite) must end in
//! an accounted outcome under `procs`, and a PE process that dies mid-run
//! must drain to a `PeFailure::Died` report — never a hang — with the
//! next world (the engine's fresh segment fork) unaffected.
//!
//! Backend selection is programmatic (`ShmemWorld::new_with_backend`,
//! `EngineConfig::world_backend`) rather than via `HALOX_BACKEND`: the
//! env lever is process-global, and this binary deliberately runs both
//! backends side by side.

use halox::dd::{build_partition, DdGrid};
use halox::engine::{
    Checkpoint, CheckpointConfig, CheckpointError, DlbMode, Engine, EngineConfig, EngineError,
    ExchangeBackend, PeerState, RunMode, RunStats, Thermostat, WorldBackend,
};
use halox::md::minimize::{steepest_descent, MinimizeOptions};
use halox::md::{GrappaBuilder, System, Vec3};
use halox::shmem::{
    shared, FaultKind, FaultOp, FaultPlan, FaultRule, PeFailure, ShmemWorld, SymVec3, Topology,
};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

const BACKENDS: [WorldBackend; 2] = [WorldBackend::Threads, WorldBackend::Procs];
const DEADLINE: Duration = Duration::from_millis(200);
const STALL: Duration = Duration::from_millis(400);

fn chaos_seed() -> u64 {
    std::env::var("HALOX_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// One relaxed system shared by every engine case in this binary —
/// minimisation dominates test wall-clock and the cases only need a
/// common, reproducible starting point.
fn relaxed_system() -> &'static System {
    static SYS: OnceLock<System> = OnceLock::new();
    SYS.get_or_init(|| {
        let mut sys = GrappaBuilder::new(3000).seed(11).temperature(210.0).build();
        steepest_descent(&mut sys, MinimizeOptions::default());
        sys
    })
}

// ---------------------------------------------------------------------------
// World-level conformance: signal protocol, collectives, reset/reuse.
// ---------------------------------------------------------------------------

/// Neighbour-ring put-with-signal on a mixed fabric: islands(4, 2) makes
/// half the edges direct NVLink stores and half proxied "IB" puts, so one
/// scenario covers both delivery paths of each backend.
fn signal_ring(backend: WorldBackend) -> Vec<(f32, f32, f32)> {
    let n = 4;
    let w = ShmemWorld::new_with_backend(backend, Topology::islands(n, 2), 1);
    let buf = SymVec3::alloc(n, 2);
    let b = &buf;
    w.run(|pe| {
        let dst = (pe.id + 1) % pe.npes();
        let payload = [Vec3::new(pe.id as f32, 2.5 * pe.id as f32, -1.0)];
        pe.put_vec3_signal_nbi(b, dst, 0, &payload, 0, pe.id as u64 + 1);
        pe.quiet();
        let left = (pe.id + pe.npes() - 1) % pe.npes();
        pe.wait_signal(0, left as u64 + 1);
        // The doorbell is level-satisfied after the wait.
        assert!(pe.try_signal(0, left as u64 + 1));
        let mut got = [Vec3::ZERO; 1];
        pe.get_vec3(b, pe.id, 0, &mut got);
        (got[0].x, got[0].y, got[0].z)
    })
}

#[test]
fn signal_protocol_conforms_across_backends() {
    let threads = signal_ring(WorldBackend::Threads);
    let procs = signal_ring(WorldBackend::Procs);
    assert_eq!(threads, procs);
    for (pe, &(x, y, z)) in threads.iter().enumerate() {
        let left = (pe + 3) % 4;
        assert_eq!((x, y, z), (left as f32, 2.5 * left as f32, -1.0));
    }
}

/// Order-sensitive f64 reductions: the contributions are scaled so a
/// different summation order changes the low bits. Both backends must
/// produce the one canonical (tree-ordered) result, run after run.
fn collective_round(backend: WorldBackend) -> Vec<(u64, u64)> {
    let w = ShmemWorld::new_with_backend(backend, Topology::all_nvlink(4), 1);
    w.run(|pe| {
        let v = (pe.id as f64 + 1.0) * 1e-3 + 1e10 * ((pe.id % 2) as f64);
        let s = pe.allreduce_sum(v);
        let m = pe.allreduce_max(-v);
        (s.to_bits(), m.to_bits())
    })
}

#[test]
fn collectives_are_bitwise_deterministic_across_backends() {
    let reference = collective_round(WorldBackend::Threads);
    for backend in BACKENDS {
        for round in 0..3 {
            assert_eq!(
                collective_round(backend),
                reference,
                "{} round {round} diverged",
                backend.label()
            );
        }
    }
}

#[test]
fn world_reset_and_reuse_conforms() {
    for backend in BACKENDS {
        let w = ShmemWorld::new_with_backend(backend, Topology::all_nvlink(2), 1);
        let buf = SymVec3::alloc(2, 1);
        let b = &buf;
        for round in 0u64..2 {
            let out = w.run(|pe| {
                if pe.id == 0 {
                    pe.put_vec3_signal_nbi(b, 1, 0, &[Vec3::splat(round as f32 + 1.0)], 0, 1);
                    pe.quiet();
                    0.0
                } else {
                    pe.wait_signal(0, 1);
                    b.get(1, 0).x
                }
            });
            assert_eq!(
                out,
                vec![0.0, round as f32 + 1.0],
                "{} round {round}",
                backend.label()
            );
            // Reset is what makes the monotone slot reusable: without it
            // the next round's wait on value 1 would be pre-satisfied.
            w.reset_signals();
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-level conformance: serial ≡ threaded ≡ procs, bitwise.
// ---------------------------------------------------------------------------

fn engine_config(backend: ExchangeBackend, gpus_per_node: Option<usize>) -> EngineConfig {
    let mut cfg = EngineConfig::new(backend);
    cfg.nstlist = 5;
    cfg.topology_gpus_per_node = gpus_per_node;
    cfg.watchdog.deadline = Duration::from_secs(5);
    // Thermostat on: every step runs the global kinetic-energy allreduce,
    // the one place a schedule- or backend-dependent reduction order would
    // break bitwise identity.
    cfg.thermostat = Some(Thermostat {
        t_ref: 210.0,
        tau_ps: 0.5,
    });
    cfg
}

fn run_engine(
    grid: [usize; 3],
    mut cfg: EngineConfig,
    mode: RunMode,
    world: WorldBackend,
) -> (System, RunStats) {
    cfg.run_mode = mode;
    cfg.world_backend = world;
    let mut engine = Engine::new(relaxed_system().clone(), DdGrid::new(grid), cfg);
    let stats = engine.run(10);
    (engine.system, stats)
}

fn assert_bitwise(label: &str, a: &(System, RunStats), b: &(System, RunStats)) {
    let bit3 = |p: &Vec3, q: &Vec3| {
        p.x.to_bits() == q.x.to_bits()
            && p.y.to_bits() == q.y.to_bits()
            && p.z.to_bits() == q.z.to_bits()
    };
    for (i, (p, q)) in a.0.positions.iter().zip(&b.0.positions).enumerate() {
        assert!(bit3(p, q), "{label}: position {i} differs: {p:?} vs {q:?}");
    }
    for (i, (p, q)) in a.0.velocities.iter().zip(&b.0.velocities).enumerate() {
        assert!(bit3(p, q), "{label}: velocity {i} differs: {p:?} vs {q:?}");
    }
    assert_eq!(
        a.1.energies.len(),
        b.1.energies.len(),
        "{label}: step count"
    );
    for (s, (e, f)) in a.1.energies.iter().zip(&b.1.energies).enumerate() {
        assert!(
            e.total().to_bits() == f.total().to_bits(),
            "{label}: step {s} energy differs: {} vs {}",
            e.total(),
            f.total()
        );
    }
}

/// The acceptance matrix: every transport × {2, 4} PEs, three executors,
/// one trajectory. The serial driver is ground truth; threaded and procs
/// must match it to the last bit (same physics, same reduction trees —
/// only the PE substrate differs).
#[test]
fn trajectories_bitwise_serial_threaded_procs() {
    let cases: [(ExchangeBackend, Option<usize>, [usize; 3]); 6] = [
        (ExchangeBackend::NvshmemFused, Some(1), [2, 1, 1]),
        (ExchangeBackend::NvshmemFused, Some(2), [2, 2, 1]),
        (ExchangeBackend::Mpi, Some(1), [2, 1, 1]),
        (ExchangeBackend::Mpi, Some(2), [2, 2, 1]),
        // ThreadMpi needs one NVLink island (event-driven direct copies).
        (ExchangeBackend::ThreadMpi, None, [2, 1, 1]),
        (ExchangeBackend::ThreadMpi, None, [2, 2, 1]),
    ];
    for (backend, gpus, grid) in cases {
        let label = format!("{} {grid:?}", backend.label());
        let cfg = engine_config(backend, gpus);
        let serial = run_engine(grid, cfg.clone(), RunMode::Serial, WorldBackend::Threads);
        let threaded = run_engine(grid, cfg.clone(), RunMode::Threaded, WorldBackend::Threads);
        let procs = run_engine(grid, cfg, RunMode::Threaded, WorldBackend::Procs);
        assert_bitwise(&format!("{label}: serial vs threaded"), &serial, &threaded);
        assert_bitwise(&format!("{label}: threaded vs procs"), &threaded, &procs);
    }
}

/// Dynamic load balancing in counter mode moves cell boundaries from a
/// deterministic work metric (pairs evaluated + owned atoms), so the
/// boundary trajectory — and with it the whole MD trajectory — must stay
/// bitwise identical across all three executors. The thermostat stays on:
/// shifted slabs change per-rank atom counts, and the kinetic-energy
/// allreduce must still produce the one canonical tree-ordered sum.
#[test]
fn dlb_counter_trajectories_bitwise_serial_threaded_procs() {
    let cases: [(ExchangeBackend, Option<usize>, [usize; 3]); 2] = [
        (ExchangeBackend::NvshmemFused, Some(1), [4, 1, 1]),
        (ExchangeBackend::Mpi, Some(2), [2, 2, 1]),
    ];
    for (backend, gpus, grid) in cases {
        let label = format!("dlb {} {grid:?}", backend.label());
        let mut cfg = engine_config(backend, gpus);
        cfg.dlb = DlbMode::Counter;
        let serial = run_engine(grid, cfg.clone(), RunMode::Serial, WorldBackend::Threads);
        let threaded = run_engine(grid, cfg.clone(), RunMode::Threaded, WorldBackend::Threads);
        let procs = run_engine(grid, cfg, RunMode::Threaded, WorldBackend::Procs);
        // The controller really ran (one update per gathered segment) and
        // the deterministic load metric agrees to the last integer.
        assert_eq!(serial.1.dlb_updates, 2, "{label}: updates");
        assert_eq!(serial.1.dlb_updates, threaded.1.dlb_updates, "{label}");
        assert_eq!(serial.1.rank_loads, threaded.1.rank_loads, "{label}: loads");
        assert_eq!(serial.1.rank_loads, procs.1.rank_loads, "{label}: loads");
        assert_bitwise(&format!("{label}: serial vs threaded"), &serial, &threaded);
        assert_bitwise(&format!("{label}: threaded vs procs"), &threaded, &procs);
    }
}

/// Multi-pulse forwarding conformance: a communication radius larger than
/// one cell makes every x pulse a two-hop chain (halo atoms forwarded
/// through the intermediate rank), and the executors must still agree
/// bitwise. The second case layers DLB counter mode on top — the pulse
/// count is pinned at the start-of-run geometry, so boundary moves change
/// slab widths but never the signal-slot layout.
#[test]
fn multipulse_trajectories_bitwise_serial_threaded_procs() {
    let grid = [4, 1, 1];
    for dlb in [DlbMode::Off, DlbMode::Counter] {
        let mut cfg = engine_config(ExchangeBackend::NvshmemFused, Some(1));
        cfg.cutoff = 1.0;
        cfg.buffer = 0.2;
        cfg.dlb = dlb;
        // The scenario really is multi-pulse: r_comm exceeds one uniform
        // cell, so the x dimension needs two pulses.
        let part = build_partition(relaxed_system(), &DdGrid::new(grid), cfg.r_comm());
        assert_eq!(part.total_pulses(), 2, "expected a 2-pulse x chain");
        let label = format!("multipulse dlb={}", dlb.label());
        let serial = run_engine(grid, cfg.clone(), RunMode::Serial, WorldBackend::Threads);
        let threaded = run_engine(grid, cfg.clone(), RunMode::Threaded, WorldBackend::Threads);
        let procs = run_engine(grid, cfg, RunMode::Threaded, WorldBackend::Procs);
        assert_bitwise(&format!("{label}: serial vs threaded"), &serial, &threaded);
        assert_bitwise(&format!("{label}: threaded vs procs"), &threaded, &procs);
    }
}

// ---------------------------------------------------------------------------
// Checkpoint/restart conformance: kill-at-k ≡ uninterrupted, bitwise.
// ---------------------------------------------------------------------------

fn ckpt_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("halox-conf-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// Checkpoint at step 5, "kill" the process (drop the engine), resume from
/// the newest file under a possibly different executor, finish to step 10.
fn run_interrupted(
    grid: [usize; 3],
    mut cfg: EngineConfig,
    first: (RunMode, WorldBackend),
    second: (RunMode, WorldBackend),
    dir: &PathBuf,
) -> (System, RunStats) {
    cfg.checkpoint = Some(CheckpointConfig::in_dir(dir));
    cfg.run_mode = first.0;
    cfg.world_backend = first.1;
    let mut engine = Engine::new(relaxed_system().clone(), DdGrid::new(grid), cfg.clone());
    let stats = engine.run(5);
    assert_eq!(stats.steps, 5);
    drop(engine); // the kill: only the checkpoint files survive

    cfg.run_mode = second.0;
    cfg.world_backend = second.1;
    let mut resumed = Engine::resume_latest(dir, cfg).expect("resume from newest checkpoint");
    assert_eq!(resumed.resumed(), Some((5, 0)));
    let stats = resumed.run(5);
    assert_eq!(stats.steps, 10, "stats must span the whole trajectory");
    (resumed.system, stats)
}

/// The bitwise-resume contract of DESIGN.md §3.6 across the executor
/// matrix: checkpoint at step k + kill + resume equals the uninterrupted
/// run to the last bit — positions, velocities, every per-step energy.
/// Resume deliberately crosses executors (threads-written checkpoints
/// resumed under procs and serial, and vice versa): the execution substrate
/// is excluded from the config fingerprint precisely because the
/// trajectory is substrate-invariant.
#[test]
fn checkpoint_kill_resume_bitwise_across_executors() {
    type Exec = (RunMode, WorldBackend);
    const SERIAL: Exec = (RunMode::Serial, WorldBackend::Threads);
    const THREADS: Exec = (RunMode::Threaded, WorldBackend::Threads);
    const PROCS: Exec = (RunMode::Threaded, WorldBackend::Procs);
    let cases: [(ExchangeBackend, Exec, Exec, &str); 6] = [
        (
            ExchangeBackend::NvshmemFused,
            SERIAL,
            SERIAL,
            "serial-serial",
        ),
        (
            ExchangeBackend::NvshmemFused,
            THREADS,
            THREADS,
            "threads-threads",
        ),
        (ExchangeBackend::NvshmemFused, PROCS, PROCS, "procs-procs"),
        (
            ExchangeBackend::NvshmemFused,
            THREADS,
            PROCS,
            "threads-procs",
        ),
        (ExchangeBackend::Mpi, PROCS, SERIAL, "procs-serial"),
        (ExchangeBackend::Mpi, THREADS, THREADS, "threads-threads"),
    ];
    for (backend, first, second, label) in cases {
        let label = format!("{} {label}", backend.label());
        let cfg = engine_config(backend, Some(2));
        let reference = run_engine(
            [2, 2, 1],
            cfg.clone(),
            RunMode::Threaded,
            WorldBackend::Threads,
        );
        let dir = ckpt_dir(&format!("kill-{}", label.replace(' ', "-")));
        let interrupted = run_interrupted([2, 2, 1], cfg, first, second, &dir);
        assert_bitwise(
            &format!("{label}: kill+resume vs uninterrupted"),
            &interrupted,
            &reference,
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Checkpoint/resume mid-DLB-run: boundaries shifted by the controller are
/// trajectory state, carried in the checkpoint body (format v2). A kill
/// after the first segment — when the bounds have already moved off
/// uniform — must resume under a different executor and still match the
/// uninterrupted DLB run to the last bit.
#[test]
fn dlb_shifted_bounds_kill_resume_bitwise() {
    let grid = [4, 1, 1];
    let mut cfg = engine_config(ExchangeBackend::NvshmemFused, Some(1));
    cfg.dlb = DlbMode::Counter;
    let reference = run_engine(grid, cfg.clone(), RunMode::Threaded, WorldBackend::Threads);
    assert!(reference.1.dlb_updates >= 1, "controller must have run");

    let dir = ckpt_dir("dlb-resume");
    cfg.checkpoint = Some(CheckpointConfig::in_dir(&dir));
    cfg.run_mode = RunMode::Threaded;
    cfg.world_backend = WorldBackend::Threads;
    let mut engine = Engine::new(relaxed_system().clone(), DdGrid::new(grid), cfg.clone());
    let stats = engine.run(5);
    assert_eq!(stats.steps, 5);
    assert!(
        !engine.bounds().is_uniform(),
        "one segment of skew must shift boundaries"
    );
    drop(engine); // the kill: only the checkpoint files survive

    // Resume under the cross-process executor: the step-5 checkpoint body
    // must hand the resumed engine the shifted boundaries, or its second
    // segment would repartition on uniform cells and diverge.
    cfg.world_backend = WorldBackend::Procs;
    let mut resumed = Engine::resume_latest(&dir, cfg).expect("resume from newest checkpoint");
    assert_eq!(resumed.resumed(), Some((5, 0)));
    assert!(
        !resumed.bounds().is_uniform(),
        "resume must restore the shifted boundaries"
    );
    let stats = resumed.run(5);
    assert_eq!(stats.steps, 10);
    assert_bitwise(
        "dlb kill+resume vs uninterrupted",
        &(resumed.system, stats),
        &reference,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt-checkpoint tolerance: a bit-flipped newest file (plus a garbage
/// impostor) must fall back to the previous checkpoint with a warning
/// counter — never a panic — and the resumed trajectory still matches the
/// uninterrupted run bitwise from the older rewind point.
#[test]
fn corrupt_checkpoint_falls_back_to_previous() {
    let cfg = engine_config(ExchangeBackend::NvshmemFused, Some(2));
    let reference = run_engine(
        [2, 2, 1],
        cfg.clone(),
        RunMode::Threaded,
        WorldBackend::Threads,
    );

    let dir = ckpt_dir("corrupt");
    let mut first_cfg = cfg.clone();
    first_cfg.checkpoint = Some(CheckpointConfig::in_dir(&dir));
    let mut engine = Engine::new(
        relaxed_system().clone(),
        DdGrid::new([2, 2, 1]),
        first_cfg.clone(),
    );
    engine.run(10); // checkpoints at 0, 5, 10
    drop(engine);

    // Bit-flip the newest checkpoint and add a garbage file that sorts even
    // newer.
    let newest = dir.join(Checkpoint::file_name(10));
    let mut bytes = std::fs::read(&newest).expect("checkpoint written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&newest, &bytes).unwrap();
    std::fs::write(dir.join(Checkpoint::file_name(11)), b"HXCKgarbage").unwrap();

    let mut resumed = Engine::resume_latest(&dir, first_cfg).expect("fall back to step 5");
    assert_eq!(
        resumed.resumed(),
        Some((5, 2)),
        "resumed from 5, skipping two corrupt files"
    );
    let stats = resumed.run(5);
    assert_eq!(stats.corrupt_checkpoints_skipped, 2);
    assert_bitwise(
        "corrupt fallback vs uninterrupted",
        &(resumed.system, stats),
        &reference,
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Resuming under a different transport is refused with the typed
/// fingerprint mismatch naming the field — on a checkpoint written by the
/// cross-process executor, closing the loop on config identity.
#[test]
fn resume_with_mismatched_transport_is_refused() {
    let dir = ckpt_dir("fingerprint");
    let mut cfg = engine_config(ExchangeBackend::NvshmemFused, Some(2));
    cfg.checkpoint = Some(CheckpointConfig::in_dir(&dir));
    cfg.world_backend = WorldBackend::Procs;
    let mut engine = Engine::new(
        relaxed_system().clone(),
        DdGrid::new([2, 2, 1]),
        cfg.clone(),
    );
    engine.run(5);
    drop(engine);

    let mut other = cfg.clone();
    other.backend = ExchangeBackend::ThreadMpi;
    match Engine::resume_latest(&dir, other) {
        Err(EngineError::Checkpoint(CheckpointError::Mismatch { field, .. })) => {
            assert_eq!(field, "transport");
        }
        Err(e) => panic!("wrong error: {e}"),
        Ok(_) => panic!("mismatched transport must not resume"),
    }
    // Same config resumes fine — including under the threads executor.
    let mut same = cfg;
    same.world_backend = WorldBackend::Threads;
    assert!(Engine::resume_latest(&dir, same).is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Supervised in-run recovery on the cross-process backend: a one-shot
/// `KillPe` severs a real child's proxy socket mid-segment, the child dies,
/// `waitpid` reports it, the peer goes `Failed` — and with no fallback
/// headroom (fallback pinned to the primary) the segment fails terminally.
/// The supervisor must rewind to the last checkpoint, fork a fresh world,
/// replay, and finish with a trajectory bitwise-equal to a fault-free run;
/// the revived peer ends healthy after its probation trial.
#[test]
fn killed_pe_process_recovers_via_rewind_on_procs() {
    // islands(4, 1): every edge is proxied, so the kill is guaranteed to
    // hit a parent-side proxy (the path that severs the socket).
    let mk_cfg = || {
        let mut cfg = engine_config(ExchangeBackend::NvshmemFused, Some(1));
        cfg.watchdog.deadline = DEADLINE;
        cfg.watchdog.max_retries = 0;
        cfg.watchdog.fallback = ExchangeBackend::NvshmemFused;
        cfg.world_backend = WorldBackend::Procs;
        cfg
    };
    let reference = run_engine([2, 2, 1], mk_cfg(), RunMode::Threaded, WorldBackend::Procs);

    let dir = ckpt_dir("killpe");
    let mut cfg = mk_cfg();
    cfg.checkpoint = Some(CheckpointConfig::in_dir(&dir));
    cfg.chaos = Some(FaultPlan {
        name: "kill-child-once".into(),
        seed: chaos_seed(),
        rules: vec![FaultRule {
            pe: Some(1),
            op: FaultOp::Any,
            after_ops: 0,
            every: None,
            kind: FaultKind::KillPe,
        }],
    });
    let mut engine = Engine::new(relaxed_system().clone(), DdGrid::new([2, 2, 1]), cfg);
    let stats = engine
        .try_run(10)
        .expect("rewind-and-replay must absorb a killed child process");
    assert!(stats.recoveries >= 1, "at least one rewind");
    assert!(stats.faults_injected >= 1);
    assert_eq!(stats.steps, 10);
    assert_bitwise(
        "procs kill recovery vs fault-free",
        &(engine.system.clone(), stats),
        &reference,
    );
    let health = engine.health().expect("health board built");
    assert_eq!(health.state(1), PeerState::Healthy, "victim rehabilitated");
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Fault-path conformance.
// ---------------------------------------------------------------------------

/// One chaos plan (selected by `HALOX_CHAOS_SEED`, like the chaos suite's
/// matrix) against the full engine on the procs backend: the run must end
/// in an accounted state — completed, retried, or downgraded — and never
/// hang, with the same bookkeeping invariants the threads backend obeys.
#[test]
fn chaos_plan_accounted_on_procs_backend() {
    let seed = chaos_seed();
    let plans = FaultPlan::builtins(seed, 4, STALL);
    let plan = plans[seed as usize % plans.len()].clone();
    let mut cfg = engine_config(ExchangeBackend::NvshmemFused, Some(2));
    cfg.watchdog.deadline = DEADLINE;
    cfg.world_backend = WorldBackend::Procs;
    cfg.chaos = Some(plan.clone());
    let mut engine = Engine::new(relaxed_system().clone(), DdGrid::new([2, 2, 1]), cfg);
    let stats = engine
        .try_run(10)
        .unwrap_or_else(|e| panic!("plan {:?}: even the fallback failed: {e}", plan.name));
    assert_eq!(stats.energies.len(), 10, "plan {:?}: incomplete", plan.name);
    for (s, e) in stats.energies.iter().enumerate() {
        assert!(
            e.total().is_finite(),
            "plan {:?}: energy diverged at step {s}",
            plan.name
        );
    }
    if !stats.downgrades.is_empty() {
        assert!(stats.degraded_steps > 0, "plan {:?}", plan.name);
    }
}

/// A PE process that dies without a result frame must drain: `try_run`
/// reports `PeFailure::Died` for exactly that PE (via `waitpid`, not a
/// timeout race), and the *next* procs world forks fresh children and
/// completes — the property the engine's segment-retry/fallback ladder
/// relies on after it marks the peer `Failed`.
#[test]
fn killed_pe_drains_and_next_world_recovers() {
    let w = ShmemWorld::new_with_backend(WorldBackend::Procs, Topology::all_nvlink(4), 1);
    let err = w
        .try_run(|pe| {
            pe.barrier_all();
            if pe.id == 2 {
                shared::exit_now(9);
            }
            pe.id as u64
        })
        .expect_err("PE 2 died mid-run");
    assert_eq!(err.failures.len(), 1, "{err}");
    let (pe, cause) = &err.failures[0];
    assert_eq!(*pe, 2);
    assert!(matches!(cause, PeFailure::Died { .. }), "got {cause}");

    // Fresh world, fresh forks: the dead child must not poison the heap or
    // the proxy endpoints for subsequent segments.
    let w2 = ShmemWorld::new_with_backend(WorldBackend::Procs, Topology::all_nvlink(4), 1);
    let out = w2.run(|pe| {
        pe.barrier_all();
        pe.allreduce_sum(pe.id as f64)
    });
    assert_eq!(out, vec![6.0; 4]);
}
