//! Chaos suite: every built-in fault plan against the full engine, on both
//! signal-driven transports. Each run must end in one of the accounted
//! states — complete with trajectories agreeing with the fault-free run,
//! retried, or cleanly degraded to the two-sided fallback — and must never
//! hang (every wait is bounded, DESIGN.md §3.2) and never corrupt silently
//! (positions checked against the fault-free trajectory; the functional
//! trace replayed through the protocol checker for delay-class plans).
//!
//! `HALOX_CHAOS_SEED` selects the fault-plan seed (victim PEs and trigger
//! points); CI runs a small matrix of fixed seeds.

use halox::dd::DdGrid;
use halox::engine::{Engine, EngineConfig, ExchangeBackend, RunStats};
use halox::md::minimize::{steepest_descent, MinimizeOptions};
use halox::md::{GrappaBuilder, System};
use halox::shmem::{FaultKind, FaultPlan};
use halox::trace::{check, Recorder};
use std::sync::Arc;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_millis(200);
/// Stall plans are sized past the deadline so StallPe exercises stall
/// *diagnosis* (watchdog expiry → retry), not silent absorption.
const STALL: Duration = Duration::from_millis(400);

fn chaos_seed() -> u64 {
    std::env::var("HALOX_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn relaxed_system(seed: u64) -> System {
    let mut sys = GrappaBuilder::new(3000)
        .seed(seed)
        .temperature(200.0)
        .build();
    steepest_descent(&mut sys, MinimizeOptions::default());
    sys
}

fn chaos_config(
    backend: ExchangeBackend,
    gpus_per_node: Option<usize>,
    plan: Option<FaultPlan>,
) -> EngineConfig {
    let mut cfg = EngineConfig::new(backend);
    cfg.nstlist = 5;
    cfg.topology_gpus_per_node = gpus_per_node;
    cfg.watchdog.deadline = DEADLINE;
    cfg.chaos = plan;
    cfg
}

/// Run one plan; the engine must return (never hang) and the result must be
/// an accounted outcome: Ok with either no recovery activity, retries, or a
/// recorded downgrade. Returns the stats for further assertions.
fn run_accounted(
    sys: &System,
    backend: ExchangeBackend,
    gpus_per_node: Option<usize>,
    plan: &FaultPlan,
    steps: usize,
) -> (Engine, RunStats) {
    let cfg = chaos_config(backend, gpus_per_node, Some(plan.clone()));
    let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
    let stats = engine
        .try_run(steps)
        .unwrap_or_else(|e| panic!("plan {:?}: even the fallback failed: {e}", plan.name));
    assert_eq!(
        stats.energies.len(),
        steps,
        "plan {:?}: incomplete run",
        plan.name
    );
    for (s, e) in stats.energies.iter().enumerate() {
        assert!(
            e.total().is_finite(),
            "plan {:?}: energy diverged at step {s}",
            plan.name
        );
    }
    // Degradation bookkeeping is consistent: downgrades imply degraded
    // steps and stall diagnoses.
    if !stats.downgrades.is_empty() {
        assert!(stats.degraded_steps > 0, "plan {:?}", plan.name);
        assert!(!stats.stall_reports.is_empty(), "plan {:?}", plan.name);
    }
    (engine, stats)
}

fn max_dev_nm(sys: &System, a: &System, b: &System) -> f32 {
    a.positions
        .iter()
        .zip(&b.positions)
        .map(|(&p, &q)| sys.pbc.dist2(p, q).sqrt())
        .fold(0.0, f32::max)
}

#[test]
fn every_builtin_plan_accounted_on_fused_mixed_topology() {
    // islands(4,2): half the edges are direct NVLink stores, half proxied
    // "IB" puts — both chaos choke points exercised.
    let sys = relaxed_system(301);
    for plan in FaultPlan::builtins(chaos_seed(), 4, STALL) {
        let crash = plan
            .rules
            .iter()
            .any(|r| matches!(r.kind, FaultKind::CrashPe));
        let (_, stats) = run_accounted(&sys, ExchangeBackend::NvshmemFused, Some(2), &plan, 20);
        if crash {
            assert!(
                !stats.downgrades.is_empty(),
                "a crashed PE must force a transport downgrade"
            );
        }
    }
}

#[test]
fn every_builtin_plan_accounted_on_tmpi() {
    let sys = relaxed_system(302);
    for plan in FaultPlan::builtins(chaos_seed(), 4, STALL) {
        run_accounted(&sys, ExchangeBackend::ThreadMpi, None, &plan, 20);
    }
}

#[test]
fn surviving_runs_match_fault_free_trajectory() {
    // Plans the primary transport absorbs (delays, reorder, one-shot drops)
    // must yield the same trajectory as the fault-free run — faults may
    // cost retries, never physics.
    let sys = relaxed_system(303);
    let fault_free = {
        let cfg = chaos_config(ExchangeBackend::NvshmemFused, Some(2), None);
        let mut engine = Engine::new(sys.clone(), DdGrid::new([2, 2, 1]), cfg);
        engine.run(10);
        engine.system
    };
    for plan in FaultPlan::builtins(chaos_seed(), 4, STALL) {
        let (engine, stats) =
            run_accounted(&sys, ExchangeBackend::NvshmemFused, Some(2), &plan, 10);
        let dev = max_dev_nm(&sys, &engine.system, &fault_free);
        assert!(
            dev < 2e-4,
            "plan {:?}: trajectory deviates {dev} nm from fault-free \
             (retries {}, downgrades {})",
            plan.name,
            stats.retries,
            stats.downgrades.len()
        );
    }
}

#[test]
fn delay_chaos_trace_is_checker_clean() {
    // Delay-class faults shuffle timing but deliver everything; the
    // recorded event stream must replay with zero protocol violations —
    // chaos must not be able to provoke a signal-ordering bug.
    let sys = relaxed_system(304);
    let plans = FaultPlan::builtins(chaos_seed(), 4, Duration::from_millis(10));
    let delay_plan = plans
        .iter()
        .find(|p| p.name.contains("delay"))
        .expect("builtins include a delay plan")
        .clone();
    let rec = Arc::new(Recorder::new());
    let mut cfg = chaos_config(ExchangeBackend::NvshmemFused, Some(2), Some(delay_plan));
    cfg.trace = Some(Arc::clone(&rec));
    let mut engine = Engine::new(sys, DdGrid::new([2, 2, 1]), cfg);
    let stats = engine.try_run(10).expect("delay plan must complete");
    assert!(stats.faults_injected > 0, "delay plan must actually fire");
    let trace = rec.drain();
    assert!(!trace.events.is_empty());
    let report = check(&trace);
    assert!(
        report.is_clean(),
        "protocol violations under delay chaos:\n{report}"
    );
}

#[test]
fn permanent_crash_reports_full_diagnosis() {
    // The StallReport surfaced on a crashed peer must carry an actionable
    // diagnosis: the stuck slot, expected vs observed signal values, the
    // suspect peer, and a non-empty per-slot snapshot.
    let sys = relaxed_system(305);
    let crash_plan = FaultPlan::builtins(chaos_seed(), 4, STALL)
        .into_iter()
        .find(|p| p.rules.iter().any(|r| matches!(r.kind, FaultKind::CrashPe)))
        .expect("builtins include a crash plan");
    let victim = crash_plan.rules[0].pe.expect("crash rule targets one PE");
    let (engine, stats) = run_accounted(
        &sys,
        ExchangeBackend::NvshmemFused,
        Some(2),
        &crash_plan,
        20,
    );
    assert!(!stats.stall_reports.is_empty());
    for r in &stats.stall_reports {
        assert!(r.expected > r.observed, "stall must report missing signal");
        assert!(!r.slot_snapshot.is_empty());
        assert!(r.waited_ms as u128 >= DEADLINE.as_millis());
    }
    assert!(
        stats
            .stall_reports
            .iter()
            .any(|r| r.suspect_peer == Some(victim)),
        "at least one diagnosis must finger the crashed PE {victim}"
    );
    // The victim is off the fused path for good.
    let health = engine.health().expect("health board built");
    assert!(
        !matches!(health.state(victim), halox::engine::PeerState::Healthy),
        "crashed peer must not be considered healthy"
    );
}
